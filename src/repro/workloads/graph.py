"""GAP graph kernels: bfs, pr, cc, bc, tc (Section VI workloads).

Each generator replays the kernel's memory-access structure over an R-MAT
graph: CSR offsets and edge lists are affine streams, while rank/label/
visited arrays gathered through edge values are indirect streams — the
same annotation split the paper reports (55% affine / 44% indirect for
PageRank).  Vertices are range-partitioned across cores as in GAP's
OpenMP loops.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from repro.workloads.base import (
    WorkloadBuilder,
    WorkloadScale,
    concat_ranges,
    interleave_pairs,
    partition_range,
)
from repro.workloads.rmat import CsrGraph, rmat_graph
from repro.workloads.trace import Workload

# Bytes of graph state per vertex across the kernel's arrays (offsets,
# ~8 edges of 4 B, two 4 B vertex arrays); used to size V from the
# footprint target.
BYTES_PER_VERTEX = 56


@functools.lru_cache(maxsize=8)
def _shared_graph(scale: int, seed: int) -> CsrGraph:
    return rmat_graph(scale, edge_factor=8, seed=seed)


def graph_for_scale(scale: WorkloadScale) -> CsrGraph:
    vertices_target = max(1024, scale.footprint_bytes // BYTES_PER_VERTEX)
    log_v = max(10, int(math.log2(vertices_target)))
    return _shared_graph(log_v, scale.seed)


def _graph_streams(builder: WorkloadBuilder, graph: CsrGraph):
    indptr = builder.add_stream("indptr", "affine", graph.n_vertices + 1, 8)
    edges = builder.add_stream("edges", "affine", max(1, graph.n_edges), 4)
    return indptr, edges


def pagerank(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """PageRank: scan vertices, gather source ranks through the edge list."""
    graph = graph_for_scale(scale)
    builder = WorkloadBuilder("pr", scale)
    indptr, edges = _graph_streams(builder, graph)
    rank_src = builder.add_stream("rank_src", "indirect", graph.n_vertices, 4)
    rank_dst = builder.add_stream("rank_dst", "affine", graph.n_vertices, 4)

    block = 64  # vertices processed per inner loop
    for core in range(scale.n_cores):
        start, stop = partition_range(graph.n_vertices, scale.n_cores, core)
        for b_lo in range(start, stop, block):
            if builder.full():
                break
            b_hi = min(b_lo + block, stop)
            verts = np.arange(b_lo, b_hi, dtype=np.int64)
            e_lo, e_hi = int(graph.indptr[b_lo]), int(graph.indptr[b_hi])
            builder.emit(core, indptr.addr(verts))
            if e_hi > e_lo:
                edge_ids = np.arange(e_lo, e_hi, dtype=np.int64)
                neighbor = graph.indices[e_lo:e_hi].astype(np.int64)
                builder.emit(
                    core,
                    interleave_pairs(edges.addr(edge_ids), rank_src.addr(neighbor)),
                )
            builder.emit(core, rank_dst.addr(verts), write=True)
    return builder.build(compute_cycles_per_access=2.0, description="PageRank (GAP)")


def bfs(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Breadth-first search: level-synchronous frontier expansion."""
    graph = graph_for_scale(scale)
    builder = WorkloadBuilder("bfs", scale)
    indptr, edges = _graph_streams(builder, graph)
    visited = builder.add_stream("visited", "indirect", graph.n_vertices, 4)
    parent = builder.add_stream("parent", "affine", graph.n_vertices, 4)

    # Run the actual BFS to get realistic frontiers.
    seen = np.zeros(graph.n_vertices, dtype=bool)
    frontier = np.array([0], dtype=np.int64)
    seen[0] = True
    level = 0
    while len(frontier) and level < 16 and not builder.full():
        # Assign frontier vertices to cores round-robin (work stealing).
        for core in range(scale.n_cores):
            mine = frontier[core :: scale.n_cores]
            if not len(mine):
                continue
            builder.emit(core, indptr.addr(mine))
            starts = graph.indptr[mine]
            degs = graph.indptr[mine + 1] - starts
            edge_ids = concat_ranges(starts, degs)
            if len(edge_ids):
                neigh = graph.indices[edge_ids].astype(np.int64)
                builder.emit(
                    core,
                    interleave_pairs(edges.addr(edge_ids), visited.addr(neigh)),
                )
                fresh = neigh[~seen[neigh]]
                if len(fresh):
                    builder.emit(core, parent.addr(np.unique(fresh)), write=True)
        all_edges = concat_ranges(
            graph.indptr[frontier], graph.indptr[frontier + 1] - graph.indptr[frontier]
        )
        neighbors = graph.indices[all_edges].astype(np.int64)
        fresh = np.unique(neighbors[~seen[neighbors]])
        seen[fresh] = True
        frontier = fresh
        level += 1
    return builder.build(compute_cycles_per_access=1.5, description="BFS (GAP)")


def connected_components(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Connected components by label propagation over the edge list."""
    graph = graph_for_scale(scale)
    builder = WorkloadBuilder("cc", scale)
    indptr, edges = _graph_streams(builder, graph)
    labels = builder.add_stream("labels", "indirect", graph.n_vertices, 4)

    iterations = 2
    block = 64
    for _ in range(iterations):
        if builder.full():
            break
        for core in range(scale.n_cores):
            start, stop = partition_range(graph.n_vertices, scale.n_cores, core)
            for b_lo in range(start, stop, block):
                if builder.full():
                    break
                b_hi = min(b_lo + block, stop)
                verts = np.arange(b_lo, b_hi, dtype=np.int64)
                e_lo, e_hi = int(graph.indptr[b_lo]), int(graph.indptr[b_hi])
                builder.emit(core, indptr.addr(verts))
                if e_hi > e_lo:
                    edge_ids = np.arange(e_lo, e_hi, dtype=np.int64)
                    neighbor = graph.indices[e_lo:e_hi].astype(np.int64)
                    builder.emit(
                        core,
                        interleave_pairs(edges.addr(edge_ids), labels.addr(neighbor)),
                    )
                # Label updates write back through the same indirect stream.
                builder.emit(core, labels.addr(verts), write=True)
    return builder.build(
        compute_cycles_per_access=1.5, description="Connected components (GAP)"
    )


def betweenness_centrality(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Betweenness centrality: forward BFS pass + backward accumulation."""
    graph = graph_for_scale(scale)
    builder = WorkloadBuilder("bc", scale)
    indptr, edges = _graph_streams(builder, graph)
    sigma = builder.add_stream("sigma", "indirect", graph.n_vertices, 4)
    delta = builder.add_stream("delta", "indirect", graph.n_vertices, 4)
    scores = builder.add_stream("scores", "affine", graph.n_vertices, 4)

    levels: list[np.ndarray] = []
    seen = np.zeros(graph.n_vertices, dtype=bool)
    frontier = np.array([0], dtype=np.int64)
    seen[0] = True
    while len(frontier) and len(levels) < 12:
        levels.append(frontier)
        all_edges = concat_ranges(
            graph.indptr[frontier], graph.indptr[frontier + 1] - graph.indptr[frontier]
        )
        neighbors = graph.indices[all_edges].astype(np.int64)
        fresh = np.unique(neighbors[~seen[neighbors]])
        seen[fresh] = True
        frontier = fresh

    def emit_pass(level_list: list[np.ndarray], array, write: bool) -> None:
        for lvl in level_list:
            if builder.full():
                return
            for core in range(scale.n_cores):
                mine = lvl[core :: scale.n_cores]
                if not len(mine):
                    continue
                builder.emit(core, indptr.addr(mine))
                starts = graph.indptr[mine]
                degs = graph.indptr[mine + 1] - starts
                edge_ids = concat_ranges(starts, degs)
                if len(edge_ids):
                    neigh = graph.indices[edge_ids].astype(np.int64)
                    builder.emit(
                        core,
                        interleave_pairs(edges.addr(edge_ids), array.addr(neigh)),
                        write=write,
                    )

    emit_pass(levels, sigma, write=False)  # forward: path counting
    builder.mark_phase("backward")
    emit_pass(levels[::-1], delta, write=True)  # backward: dependency accumulation
    for core in range(scale.n_cores):
        start, stop = partition_range(graph.n_vertices, scale.n_cores, core)
        builder.emit(core, scores.addr(np.arange(start, stop)), write=True)
    return builder.build(
        compute_cycles_per_access=2.0, description="Betweenness centrality (GAP)"
    )


def triangle_counting(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Triangle counting: adjacency-list intersections; hub lists are
    re-read constantly, giving high reuse on a small hot set."""
    graph = graph_for_scale(scale)
    builder = WorkloadBuilder("tc", scale)
    indptr, edges = _graph_streams(builder, graph)

    degrees = graph.degrees()
    # GAP orders vertices by degree; process the high-degree vertices
    # (they dominate the intersections).
    by_degree = np.argsort(-degrees, kind="stable")
    budget = scale.accesses_per_core * scale.n_cores
    spent = 0
    vertex_pool = []
    for v in by_degree:
        cost = 2 * int(degrees[v]) + 2
        if spent + cost > budget * 2:
            break
        vertex_pool.append(int(v))
        spent += cost

    for i, v in enumerate(vertex_pool):
        if builder.full():
            break
        core = i % scale.n_cores
        builder.emit(core, indptr.addr(np.array([v, v + 1])))
        lo, hi = int(graph.indptr[v]), int(graph.indptr[v + 1])
        own_edges = np.arange(lo, hi, dtype=np.int64)
        builder.emit(core, edges.addr(own_edges))
        # Intersect with each neighbor's list (capped per neighbor).
        for u in graph.indices[lo:hi][:16]:
            ulo, uhi = int(graph.indptr[u]), int(graph.indptr[u + 1])
            span = np.arange(ulo, min(uhi, ulo + 64), dtype=np.int64)
            if len(span):
                builder.emit(core, edges.addr(span))
    return builder.build(
        compute_cycles_per_access=1.0, description="Triangle counting (GAP)"
    )

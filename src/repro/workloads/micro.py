"""Synthetic microbenchmarks: minimal single-pattern workloads.

These isolate one access pattern each, for unit tests, calibration, and
demos — the cache-behaviour equivalents of lmbench:

* ``sequential`` — one affine scan over a large array (compulsory misses
  only; exercises block prefetching).
* ``strided`` — a large-stride affine walk (regular but sparse; defeats
  block prefetching, stays affine).
* ``zipf_gather`` — skewed indirect gathers over one table (hot-head
  caching and replication target).
* ``uniform_gather`` — uniform indirect gathers (capacity-bound).
* ``shared_hot`` — every core re-reads the same small read-only block
  between private scans (the replication showcase).
* ``ping_pong`` — two cores alternately write one line range (coherence
  and single-copy behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadBuilder, WorkloadScale, interleave_pairs
from repro.workloads.tensor import zipf_cdf, zipf_indices
from repro.workloads.trace import Workload


def sequential(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Pure streaming scan."""
    builder = WorkloadBuilder("seq", scale)
    elem = 8
    n = max(scale.n_cores, scale.footprint_bytes // elem)
    data = builder.add_stream("data", "affine", n, elem)
    per_core = n // scale.n_cores
    for core in range(scale.n_cores):
        idx = core * per_core + np.arange(per_core, dtype=np.int64)
        builder.emit(core, data.addr(idx))
    return builder.build(compute_cycles_per_access=1.0, description="sequential scan")


def strided(scale: WorkloadScale = WorkloadScale(), stride_elems: int = 256) -> Workload:
    """Large-stride affine walk: one cold element per stride, sized so the
    walk never wraps — every access is a fresh block (prefetch-defeating)."""
    builder = WorkloadBuilder("stride", scale)
    elem = 8
    per_core = scale.accesses_per_core
    n = per_core * stride_elems * scale.n_cores
    data = builder.add_stream("data", "affine", n, elem)
    for core in range(scale.n_cores):
        start = core * per_core * stride_elems
        idx = start + np.arange(per_core, dtype=np.int64) * stride_elems
        builder.emit(core, data.addr(idx))
    return builder.build(compute_cycles_per_access=1.0, description="strided walk")


def zipf_gather(scale: WorkloadScale = WorkloadScale(), skew: float = 1.2) -> Workload:
    """Skewed gathers: a hot head dominates."""
    builder = WorkloadBuilder("zipf", scale)
    elem = 64
    n = max(1024, scale.footprint_bytes // elem)
    table = builder.add_stream("table", "indirect", n, elem)
    rng = np.random.default_rng(scale.seed)
    cdf = zipf_cdf(n, s=skew)
    for core in range(scale.n_cores):
        idx = zipf_indices(rng, cdf, scale.accesses_per_core)
        builder.emit(core, table.addr(idx))
    return builder.build(compute_cycles_per_access=2.0, description="zipf gathers")


def uniform_gather(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Uniform gathers: hit rate tracks capacity/footprint directly."""
    builder = WorkloadBuilder("uniform", scale)
    elem = 64
    n = max(1024, scale.footprint_bytes // elem)
    table = builder.add_stream("table", "indirect", n, elem)
    rng = np.random.default_rng(scale.seed)
    for core in range(scale.n_cores):
        idx = rng.integers(0, n, scale.accesses_per_core)
        builder.emit(core, table.addr(idx.astype(np.int64)))
    return builder.build(compute_cycles_per_access=2.0, description="uniform gathers")


def shared_hot(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Every core alternates a private scan with re-reads of one shared,
    read-only block — the canonical replication win."""
    builder = WorkloadBuilder("shared", scale)
    elem = 8
    hot_elems = 4096  # 32 kB shared block, bigger than any L1
    hot = builder.add_stream("hot", "indirect", hot_elems, elem)
    n_private = max(
        scale.n_cores * 1024, (scale.footprint_bytes - hot_elems * elem) // elem
    )
    private = builder.add_stream("private", "affine", n_private, elem)
    rng = np.random.default_rng(scale.seed)
    per_core = n_private // scale.n_cores
    for core in range(scale.n_cores):
        scan = core * per_core + np.arange(
            min(per_core, scale.accesses_per_core // 2), dtype=np.int64
        )
        gathers = rng.integers(0, hot_elems, len(scan)).astype(np.int64)
        builder.emit(
            core, interleave_pairs(private.addr(scan), hot.addr(gathers))
        )
    return builder.build(
        compute_cycles_per_access=1.5, description="shared hot block"
    )


def ping_pong(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Two cores alternately write a small range: forces single-copy
    (read-write) treatment and a write exception if mis-declared."""
    builder = WorkloadBuilder("pingpong", scale)
    elem = 8
    shared_elems = 2048
    shared = builder.add_stream(
        "shared", "indirect", shared_elems, elem, read_only=True
    )
    filler = builder.add_stream(
        "filler", "affine", max(1024, scale.footprint_bytes // elem), elem
    )
    rng = np.random.default_rng(scale.seed)
    for core in range(min(2, scale.n_cores)):
        idx = rng.integers(0, shared_elems, scale.accesses_per_core // 2)
        writes = np.arange(len(idx)) % 2 == core
        builder.emit(core, shared.addr(idx.astype(np.int64)), write=writes)
    for core in range(2, scale.n_cores):
        n = min(scale.accesses_per_core, filler.n_elements)
        builder.emit(core, filler.addr(np.arange(n, dtype=np.int64)))
    return builder.build(compute_cycles_per_access=1.0, description="ping-pong writes")


MICRO_FACTORIES = {
    "seq": sequential,
    "stride": strided,
    "zipf": zipf_gather,
    "uniform": uniform_gather,
    "shared": shared_hot,
    "pingpong": ping_pong,
}

"""Trace containers: the interface between workloads and the engine.

A :class:`Trace` is a flat, globally ordered sequence of memory requests
(core, byte address, read/write) with the owning stream id pre-resolved.
Workload generators build per-core access sequences and interleave them
into one global order; the engine later splits the trace into epochs and
per-core views.

A :class:`Workload` bundles the trace with its stream table and the
per-access compute cost of the kernel (used to convert memory stall time
into end-to-end runtime for an in-order core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stream import StreamConfig, StreamTable


@dataclass
class Trace:
    """A globally ordered memory-request trace."""

    core: np.ndarray  # int32, issuing core id
    addr: np.ndarray  # int64, byte address
    write: np.ndarray  # bool
    sid: np.ndarray  # int32, stream id or -1

    def __post_init__(self) -> None:
        self.core = np.asarray(self.core, dtype=np.int32)
        self.addr = np.asarray(self.addr, dtype=np.int64)
        self.write = np.asarray(self.write, dtype=bool)
        self.sid = np.asarray(self.sid, dtype=np.int32)
        n = len(self.core)
        for name in ("addr", "write", "sid"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"trace field {name} length mismatch")

    def __len__(self) -> int:
        return len(self.core)

    @property
    def n_cores(self) -> int:
        return int(self.core.max()) + 1 if len(self) else 0

    def slice(self, start: int, stop: int) -> "Trace":
        return Trace(
            core=self.core[start:stop],
            addr=self.addr[start:stop],
            write=self.write[start:stop],
            sid=self.sid[start:stop],
        )

    def select(self, mask: np.ndarray) -> "Trace":
        return Trace(
            core=self.core[mask],
            addr=self.addr[mask],
            write=self.write[mask],
            sid=self.sid[mask],
        )

    def epochs(self, accesses_per_epoch: int) -> list["Trace"]:
        """Split into fixed-size epochs (the paper's reconfiguration unit)."""
        if accesses_per_epoch <= 0:
            raise ValueError("accesses_per_epoch must be positive")
        return [
            self.slice(start, min(start + accesses_per_epoch, len(self)))
            for start in range(0, len(self), accesses_per_epoch)
        ]


def interleave(per_core: list[tuple[np.ndarray, np.ndarray]], seed: int = 0) -> Trace:
    """Merge per-core (addr, write) sequences into one global order.

    Cores issue at roughly equal rates, so the merge proportionally
    round-robins through the cores: positions are assigned by each
    access's fractional progress through its core's sequence, with a
    deterministic jitter so ties don't always favour low core ids.
    """
    parts = []
    rng = np.random.default_rng(seed)
    for core_id, (addrs, writes) in enumerate(per_core):
        addrs = np.asarray(addrs, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        if len(addrs) != len(writes):
            raise ValueError(f"core {core_id}: addr/write length mismatch")
        n = len(addrs)
        if n == 0:
            continue
        progress = (np.arange(n) + rng.random(n) * 0.5) / n
        parts.append((progress, np.full(n, core_id, np.int32), addrs, writes))
    if not parts:
        return Trace(
            core=np.empty(0, np.int32),
            addr=np.empty(0, np.int64),
            write=np.empty(0, bool),
            sid=np.empty(0, np.int32),
        )
    progress = np.concatenate([p[0] for p in parts])
    cores = np.concatenate([p[1] for p in parts])
    addrs = np.concatenate([p[2] for p in parts])
    writes = np.concatenate([p[3] for p in parts])
    order = np.argsort(progress, kind="stable")
    return Trace(
        core=cores[order],
        addr=addrs[order],
        write=writes[order],
        sid=np.full(len(order), -1, np.int32),
    )


@dataclass
class Workload:
    """A named workload: streams + trace + compute cost."""

    name: str
    streams: StreamTable
    trace: Trace
    compute_cycles_per_access: float = 2.0
    description: str = ""
    phases: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.trace) and np.all(self.trace.sid == -1):
            self.trace.sid = self.streams.resolve(self.trace.addr).astype(np.int32)

    @property
    def footprint_bytes(self) -> int:
        return sum(s.size for s in self.streams)

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    def stream_by_name(self, name: str) -> StreamConfig:
        for stream in self.streams:
            if stream.name == name:
                return stream
        raise KeyError(f"no stream named {name!r} in workload {self.name}")

    def summary(self) -> str:
        mb = self.footprint_bytes / (1024 * 1024)
        return (
            f"{self.name}: {len(self.trace)} accesses, {self.n_streams} streams, "
            f"{mb:.1f} MB footprint, {self.trace.n_cores} cores"
        )


def merge_processes(instances: list[Workload], name: str | None = None) -> Workload:
    """Combine independent process instances into one workload.

    The paper executes "multiple processes of the workload ... until the
    total footprint exceeds the NDP memory": each process has its own
    address space, streams, and core subset.  We relocate each instance
    to a disjoint address region, renumber stream ids and cores, and
    interleave the traces in global order.
    """
    if not instances:
        raise ValueError("need at least one process instance")
    if len(instances) == 1:
        return instances[0]
    from repro.core.stream import StreamConfig, StreamTable

    page = 4096
    merged_streams = StreamTable()
    parts: list[Trace] = []
    addr_offset = page
    core_offset = 0
    sid_offset = 0
    for inst in instances:
        span = max(
            (s.end for s in inst.streams), default=0
        )  # instance's address-space extent
        for stream in inst.streams:
            merged_streams.configure(
                StreamConfig(
                    sid=stream.sid + sid_offset,
                    kind=stream.kind,
                    base=stream.base + addr_offset,
                    size=stream.size,
                    elem_size=stream.elem_size,
                    read_only=stream.read_only,
                    dims=stream.dims,
                    order=stream.order,
                    name=f"p{core_offset}:{stream.name}",
                )
            )
        trace = inst.trace
        parts.append(
            Trace(
                core=trace.core + core_offset,
                addr=trace.addr + addr_offset,
                write=trace.write,
                sid=np.where(trace.sid >= 0, trace.sid + sid_offset, -1).astype(
                    np.int32
                ),
            )
        )
        addr_offset += (span + page - 1) // page * page + page
        core_offset += trace.n_cores
        sid_offset += max((s.sid for s in inst.streams), default=-1) + 1

    # Interleave by fractional progress so processes advance together.
    progress = np.concatenate(
        [np.arange(len(t)) / max(1, len(t)) for t in parts]
    )
    order = np.argsort(progress, kind="stable")
    merged = Trace(
        core=np.concatenate([t.core for t in parts])[order],
        addr=np.concatenate([t.addr for t in parts])[order],
        write=np.concatenate([t.write for t in parts])[order],
        sid=np.concatenate([t.sid for t in parts])[order],
    )
    first = instances[0]
    return Workload(
        name=name or first.name,
        streams=merged_streams,
        trace=merged,
        compute_cycles_per_access=first.compute_cycles_per_access,
        description=f"{first.description} x{len(instances)} processes",
        phases=first.phases,
    )

"""Tensor workloads: recsys (DLRM-style), mv, gnn (Section VI).

* ``recsys`` — DLRM-style recommendation inference: per sample, several
  embedding tables are gathered at Zipf-distributed indices (hot rows are
  shared across all cores — the replication opportunity behind the
  paper's 2.43x best case), followed by small dense MLP layers whose
  read-only weights every core re-reads.
* ``mv`` — matrix-vector product: the matrix is a huge streaming affine
  scan with no reuse; the vector is re-read for every row by every core
  (read-only, hot — the paper reports up to 33% of cache spent on its
  replicas).
* ``gnn`` — graph convolution as SpMM over an R-MAT graph: edge list is
  affine, gathered feature rows are a wide-element indirect stream.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import (
    WorkloadBuilder,
    WorkloadScale,
    concat_ranges,
    interleave_pairs,
    partition_range,
)
from repro.workloads.graph import graph_for_scale
from repro.workloads.trace import Workload


def zipf_cdf(n: int, s: float = 1.1) -> np.ndarray:
    """Cumulative Zipf(s) distribution over n ranks (hot-head skew)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    cdf = np.cumsum(ranks ** (-s))
    return cdf / cdf[-1]


def zipf_indices(
    rng: np.random.Generator, cdf: np.ndarray, size: int
) -> np.ndarray:
    """Zipf-distributed indices drawn against a precomputed CDF."""
    return np.searchsorted(cdf, rng.random(size)).astype(np.int64)


def recsys(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """DLRM-style inference: embedding gathers + MLP."""
    builder = WorkloadBuilder("recsys", scale)
    rng = np.random.default_rng(scale.seed + 101)
    n_tables = 8
    lookups_per_table = 4
    row_bytes = 64
    rows_per_table = max(
        1024, scale.footprint_bytes // (n_tables * row_bytes)
    )
    tables = [
        builder.add_stream(f"emb{t}", "indirect", rows_per_table, row_bytes)
        for t in range(n_tables)
    ]
    # Two dense layers; weights are small, read-only, and re-read by every
    # core for every sample — prime replication targets.
    mlp_elems = 4096
    mlp1 = builder.add_stream("mlp_w1", "affine", mlp_elems, 64)
    mlp2 = builder.add_stream("mlp_w2", "affine", mlp_elems // 4, 64)

    mlp_accesses = 16 + 8
    accesses_per_sample = n_tables * lookups_per_table + mlp_accesses
    samples = max(1, int(scale.accesses_per_core // accesses_per_sample) + 1)
    cdf = zipf_cdf(rows_per_table)
    w1 = np.arange(0, mlp_elems, mlp_elems // 16, dtype=np.int64)
    w2 = np.arange(0, mlp_elems // 4, mlp_elems // 32, dtype=np.int64)
    for core in range(scale.n_cores):
        # Draw all of this core's gathers at once, then lay them out
        # sample-major: per sample, each table's lookups then the MLP.
        per_sample = []
        for table in tables:
            idx = zipf_indices(rng, cdf, samples * lookups_per_table)
            per_sample.append(table.addr(idx).reshape(samples, lookups_per_table))
        per_sample.append(np.broadcast_to(mlp1.addr(w1), (samples, len(w1))))
        per_sample.append(np.broadcast_to(mlp2.addr(w2), (samples, len(w2))))
        builder.emit(core, np.concatenate(per_sample, axis=1).ravel())
    return builder.build(
        compute_cycles_per_access=3.0, description="DLRM-style recommendation"
    )


def matvec(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """y = A @ x, rows partitioned across cores; x is re-read per row."""
    builder = WorkloadBuilder("mv", scale)
    elem = 4
    # A wide vector: x must exceed the L1 so its reuse reaches the DRAM
    # cache, where every core re-reads it — the replication target the
    # paper reports spending up to 33% of the cache on.
    cols = 4096
    rows = max(scale.n_cores, scale.footprint_bytes // (cols * elem))
    matrix = builder.add_stream("A", "affine", rows * cols, elem, dims=(cols, rows))
    x = builder.add_stream("x", "affine", cols, elem)
    y = builder.add_stream("y", "affine", rows, elem)

    # Every 8th element of the row/vector issues a memory access (SIMD).
    step = 8
    for core in range(scale.n_cores):
        lo, hi = partition_range(rows, scale.n_cores, core)
        for r in range(lo, hi):
            if builder.full():
                break
            row_elems = np.arange(r * cols, (r + 1) * cols, step, dtype=np.int64)
            x_elems = np.arange(0, cols, step, dtype=np.int64)
            builder.emit(
                core, interleave_pairs(matrix.addr(row_elems), x.addr(x_elems))
            )
            builder.emit(core, y.addr(np.array([r])), write=True)
    return builder.build(
        compute_cycles_per_access=1.0, description="Matrix-vector multiply"
    )


def gnn(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Graph convolution (SpMM): gather neighbour feature rows, reduce."""
    graph = graph_for_scale(scale.scaled(footprint_bytes=scale.footprint_bytes // 4))
    builder = WorkloadBuilder("gnn", scale)
    feat_bytes = 256  # one feature row per vertex
    indptr = builder.add_stream("indptr", "affine", graph.n_vertices + 1, 8)
    edges = builder.add_stream("edges", "affine", max(1, graph.n_edges), 4)
    features = builder.add_stream(
        "features", "indirect", graph.n_vertices, feat_bytes
    )
    out = builder.add_stream("out", "affine", graph.n_vertices, feat_bytes)
    weights = builder.add_stream("gc_weights", "affine", 2048, 64)

    block = 64
    w = np.arange(0, 2048, 64, dtype=np.int64)
    for core in range(scale.n_cores):
        start, stop = partition_range(graph.n_vertices, scale.n_cores, core)
        for b_lo in range(start, stop, block):
            if builder.full():
                break
            b_hi = min(b_lo + block, stop)
            verts = np.arange(b_lo, b_hi, dtype=np.int64)
            builder.emit(core, indptr.addr(verts))
            starts = graph.indptr[b_lo:b_hi]
            degs = graph.indptr[b_lo + 1 : b_hi + 1] - starts
            edge_ids = concat_ranges(starts, degs)
            if len(edge_ids):
                neigh = graph.indices[edge_ids].astype(np.int64)
                builder.emit(
                    core, interleave_pairs(edges.addr(edge_ids), features.addr(neigh))
                )
            # Dense update: weights re-read per vertex block, output written.
            builder.emit(core, weights.addr(w))
            builder.emit(core, out.addr(verts), write=True)
    return builder.build(
        compute_cycles_per_access=4.0, description="GNN (SpMM over R-MAT)"
    )

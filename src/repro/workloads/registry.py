"""Workload registry: the paper's 13-workload suite by name.

``build(name, scale)`` constructs any workload; ``SUITE`` lists the full
evaluation set of Section VI, and ``REPRESENTATIVE`` is the subset used
by sweep-heavy experiments to keep bench time sane.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads import graph, rodinia, tensor
from repro.workloads.base import WorkloadScale
from repro.workloads.trace import Workload, merge_processes

FACTORIES: dict[str, Callable[[WorkloadScale], Workload]] = {
    # Tensor workloads.
    "recsys": tensor.recsys,
    "mv": tensor.matvec,
    "gnn": tensor.gnn,
    # Rodinia.
    "backprop": rodinia.backprop,
    "hotspot": rodinia.hotspot,
    "lavaMD": rodinia.lavamd,
    "lud": rodinia.lud,
    "pathfinder": rodinia.pathfinder,
    # GAP graph workloads.
    "bfs": graph.bfs,
    "pr": graph.pagerank,
    "cc": graph.connected_components,
    "bc": graph.betweenness_centrality,
    "tc": graph.triangle_counting,
}

SUITE = tuple(FACTORIES)

# A balanced subset (one per category plus the replication-heavy ones)
# for parameter sweeps.
REPRESENTATIVE = ("recsys", "mv", "hotspot", "pathfinder", "pr", "bfs")


def build(name: str, scale: WorkloadScale | None = None) -> Workload:
    """Construct a workload by suite name.

    When ``scale.processes > 1``, independent instances are generated
    (distinct seeds, disjoint address spaces, separate core subsets) and
    merged — the paper's multi-process execution model.
    """
    if name not in FACTORIES:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(FACTORIES)}"
        )
    scale = scale or WorkloadScale()
    factory = FACTORIES[name]
    if scale.processes <= 1:
        return factory(scale)
    instances = [
        factory(scale.per_process(p)) for p in range(scale.processes)
    ]
    return merge_processes(instances, name=name)


def build_suite(
    scale: WorkloadScale | None = None, names: tuple[str, ...] = SUITE
) -> dict[str, Workload]:
    return {name: build(name, scale) for name in names}

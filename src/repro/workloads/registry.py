"""Workload registry: the paper's 13-workload suite by name.

``build(name, scale)`` constructs any workload; ``SUITE`` lists the full
evaluation set of Section VI, and ``REPRESENTATIVE`` is the subset used
by sweep-heavy experiments to keep bench time sane.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads import graph, rodinia, tensor
from repro.workloads.base import WorkloadScale
from repro.workloads.trace import Workload, merge_processes

FACTORIES: dict[str, Callable[[WorkloadScale], Workload]] = {
    # Tensor workloads.
    "recsys": tensor.recsys,
    "mv": tensor.matvec,
    "gnn": tensor.gnn,
    # Rodinia.
    "backprop": rodinia.backprop,
    "hotspot": rodinia.hotspot,
    "lavaMD": rodinia.lavamd,
    "lud": rodinia.lud,
    "pathfinder": rodinia.pathfinder,
    # GAP graph workloads.
    "bfs": graph.bfs,
    "pr": graph.pagerank,
    "cc": graph.connected_components,
    "bc": graph.betweenness_centrality,
    "tc": graph.triangle_counting,
}

SUITE = tuple(FACTORIES)

# A balanced subset (one per category plus the replication-heavy ones)
# for parameter sweeps.
REPRESENTATIVE = ("recsys", "mv", "hotspot", "pathfinder", "pr", "bfs")


def _build_uncached(name: str, scale: WorkloadScale) -> Workload:
    # The span lives here — around actual generation only — so a warm
    # TraceCache hit (mmap load) is never attributed as build time.  The
    # cache's own cache.trace_load / cache.trace_build io spans cover
    # the storage layer.
    from repro.obs.tracing import current

    with current().span("workload.build", cat="task", workload=name):
        factory = FACTORIES[name]
        if scale.processes <= 1:
            return factory(scale)
        instances = [
            factory(scale.per_process(p)) for p in range(scale.processes)
        ]
        return merge_processes(instances, name=name)


def build(name: str, scale: WorkloadScale | None = None) -> Workload:
    """Construct a workload by suite name.

    When ``scale.processes > 1``, independent instances are generated
    (distinct seeds, disjoint address spaces, separate core subsets) and
    merged — the paper's multi-process execution model.

    Generation is deterministic in ``(name, scale)``, so results are
    memoized on disk (see :mod:`repro.exec.tracecache`); a cache hit
    mmaps the stored trace — page-cache shared across worker processes
    — and skips the whole generation pass (R-MAT synthesis is a
    suite-level hot spot).  Concurrent builders of the same cell are
    serialized by a per-key file lock so the trace is generated exactly
    once.  Set ``REPRO_DISK_CACHE=0`` to disable.
    """
    if name not in FACTORIES:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(FACTORIES)}"
        )
    scale = scale or WorkloadScale()

    from repro.exec.cache import cache_enabled, cache_root

    if not cache_enabled():
        return _build_uncached(name, scale)
    from repro.exec.tracecache import TraceCache, workload_key

    cache = TraceCache(cache_root())
    key = workload_key(name, scale)
    return cache.get_or_build(key, lambda: _build_uncached(name, scale))


def build_suite(
    scale: WorkloadScale | None = None, names: tuple[str, ...] = SUITE
) -> dict[str, Workload]:
    return {name: build(name, scale) for name in names}

"""Rodinia-derived workloads: backprop, hotspot, lavaMD, lud, pathfinder.

Each generator mirrors the memory-access structure of its Rodinia kernel:

* ``backprop`` — two phases: ``layerforward`` re-reads the (shared,
  read-only) weight matrix everywhere — the paper measures 91% of its
  cache going to replicas — then ``adjust_weights`` *writes* the same
  matrix, triggering NDPExt's write exception and collapsing replication.
* ``hotspot`` — 5-point stencil over a 2-D grid, rows partitioned;
  neighbour rows are shared across adjacent cores' boundaries.
* ``lavaMD`` — particles in 3-D boxes; each box reads its 27-neighbour
  boxes' particles (gathers with box-level locality).
* ``lud`` — LU decomposition: the trailing-submatrix sweep walks the
  row-major matrix column-wise, the showcase for the stream API's
  ``order`` reordering.
* ``pathfinder`` — dynamic programming over grid rows: every core reads
  the whole previous row (hot, read-only per step), writes its slice of
  the next.
"""

from __future__ import annotations

import math

import numpy as np

from repro.workloads.base import (
    WorkloadBuilder,
    WorkloadScale,
    interleave_pairs,
    partition_range,
)
from repro.workloads.trace import Workload


def backprop(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Two-phase MLP training step over a shared weight matrix."""
    builder = WorkloadBuilder("backprop", scale)
    elem = 4
    hidden = 256
    inputs = max(hidden, scale.footprint_bytes // (hidden * elem))
    weights = builder.add_stream(
        "weights", "affine", inputs * hidden, elem, dims=(hidden, inputs)
    )
    in_acts = builder.add_stream("in_acts", "affine", inputs, elem)
    hid_acts = builder.add_stream("hid_acts", "affine", hidden, elem)
    deltas = builder.add_stream("deltas", "affine", hidden, elem)

    step = 8
    # Phase 1: layerforward — every core sweeps its input slice, reading
    # the full weight row per input (weights are read-only here).
    forward_budget = scale.accesses_per_core // 2
    for core in range(scale.n_cores):
        lo, hi = partition_range(inputs, scale.n_cores, core)
        emitted = 0
        for i in range(lo, hi):
            if emitted >= forward_budget:
                break
            row = np.arange(i * hidden, (i + 1) * hidden, step, dtype=np.int64)
            builder.emit(core, in_acts.addr(np.array([i])))
            builder.emit(
                core,
                interleave_pairs(
                    weights.addr(row),
                    np.broadcast_to(
                        hid_acts.addr(np.arange(0, hidden, step)), row.shape
                    ),
                ),
            )
            emitted += 2 * len(row) + 1
    builder.mark_phase("adjust_weights")
    # Phase 2: adjust_weights — the same matrix is now written.
    for core in range(scale.n_cores):
        lo, hi = partition_range(inputs, scale.n_cores, core)
        for i in range(lo, hi):
            if builder.full():
                break
            row = np.arange(i * hidden, (i + 1) * hidden, step, dtype=np.int64)
            builder.emit(core, deltas.addr(np.arange(0, hidden, step)))
            builder.emit(core, weights.addr(row), write=True)
    return builder.build(
        compute_cycles_per_access=2.0, description="Backpropagation (Rodinia)"
    )


def hotspot(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """5-point stencil over temperature/power grids, row-partitioned."""
    builder = WorkloadBuilder("hotspot", scale)
    elem = 4
    side = max(64, int(math.isqrt(scale.footprint_bytes // (3 * elem))))
    temp_in = builder.add_stream("temp_in", "affine", side * side, elem, dims=(side, side))
    power = builder.add_stream("power", "affine", side * side, elem, dims=(side, side))
    temp_out = builder.add_stream("temp_out", "affine", side * side, elem, dims=(side, side))

    step = 4  # SIMD: one access per 4 elements
    iterations = 2
    for _ in range(iterations):
        if builder.full():
            break
        for core in range(scale.n_cores):
            lo, hi = partition_range(side, scale.n_cores, core)
            for r in range(lo, hi):
                if builder.full():
                    break
                cols = np.arange(0, side, step, dtype=np.int64)
                center = r * side + cols
                north = np.maximum(r - 1, 0) * side + cols
                south = np.minimum(r + 1, side - 1) * side + cols
                reads = np.stack(
                    [
                        temp_in.addr(center),
                        temp_in.addr(north),
                        temp_in.addr(south),
                        power.addr(center),
                    ],
                    axis=1,
                ).ravel()
                builder.emit(core, reads)
                builder.emit(core, temp_out.addr(center), write=True)
    return builder.build(
        compute_cycles_per_access=2.5, description="Hotspot stencil (Rodinia)"
    )


def lavamd(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Particle interactions across neighbouring 3-D boxes."""
    builder = WorkloadBuilder("lavaMD", scale)
    particle_bytes = 16  # position + charge
    particles_per_box = 32
    boxes_side = max(
        2,
        round(
            (scale.footprint_bytes / (particles_per_box * particle_bytes)) ** (1 / 3)
        ),
    )
    n_boxes = boxes_side**3
    n_particles = n_boxes * particles_per_box
    positions = builder.add_stream("positions", "indirect", n_particles, particle_bytes)
    forces = builder.add_stream("forces", "affine", n_particles, particle_bytes)

    def box_particles(b: int) -> np.ndarray:
        return np.arange(
            b * particles_per_box, (b + 1) * particles_per_box, dtype=np.int64
        )

    for core in range(scale.n_cores):
        lo, hi = partition_range(n_boxes, scale.n_cores, core)
        for b in range(lo, hi):
            if builder.full():
                break
            bz, rem = divmod(b, boxes_side * boxes_side)
            by, bx = divmod(rem, boxes_side)
            builder.emit(core, positions.addr(box_particles(b)))
            for dz in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dx in (-1, 0, 1):
                        nz, ny, nx = bz + dz, by + dy, bx + dx
                        if not (
                            0 <= nz < boxes_side
                            and 0 <= ny < boxes_side
                            and 0 <= nx < boxes_side
                        ):
                            continue
                        nb = (nz * boxes_side + ny) * boxes_side + nx
                        builder.emit(core, positions.addr(box_particles(nb)))
            builder.emit(core, forces.addr(box_particles(b)), write=True)
    return builder.build(
        compute_cycles_per_access=4.0, description="lavaMD n-body (Rodinia)"
    )


def lud(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """LU decomposition: column-major sweeps over a row-major matrix.

    The matrix stream is annotated with ``order`` so the hardware caches
    elements in column-major access order (Table I's reordered affine
    iterator), recovering spatial locality for the column walks.
    """
    builder = WorkloadBuilder("lud", scale)
    elem = 4
    side = max(64, int(math.isqrt(scale.footprint_bytes // elem)))
    # order=2 selects permutation (1,0,2): iterate rows innermost, i.e.
    # column-major access over row-major storage.
    matrix = builder.add_stream(
        "matrix", "affine", side * side, elem, dims=(side, side), order=2
    )
    # The shared diagonal/pivot scratch block every worker re-reads.
    pivots = builder.add_stream("pivots", "affine", side, elem)

    step = 4
    for k in range(0, side - 1):
        if builder.full():
            break
        core = k % scale.n_cores
        rows_below = np.arange(k + 1, side, step, dtype=np.int64)
        # Column k below the diagonal (the strided walk), then row k.
        col_elems = rows_below * side + k
        row_elems = k * side + np.arange(k + 1, side, step, dtype=np.int64)
        builder.emit(core, pivots.addr(np.array([k])))
        builder.emit(core, matrix.addr(col_elems))
        builder.emit(core, matrix.addr(row_elems))
        # Rank-1 update of a band of the trailing submatrix.
        for r in rows_below[:8]:
            upd = r * side + np.arange(k + 1, side, step, dtype=np.int64)
            builder.emit(core, matrix.addr(upd), write=True)
    return builder.build(
        compute_cycles_per_access=2.0, description="LU decomposition (Rodinia)"
    )


def pathfinder(scale: WorkloadScale = WorkloadScale()) -> Workload:
    """Row-by-row dynamic programming: previous row is globally shared."""
    builder = WorkloadBuilder("pathfinder", scale)
    elem = 4
    cols = max(1024, scale.footprint_bytes // (8 * elem))
    rows = 8
    wall = builder.add_stream("wall", "affine", rows * cols, elem, dims=(cols, rows))
    prev_row = builder.add_stream("prev_row", "affine", cols, elem)
    next_row = builder.add_stream("next_row", "affine", cols, elem)

    step = 2
    for t in range(rows):
        if builder.full():
            break
        for core in range(scale.n_cores):
            lo, hi = partition_range(cols, scale.n_cores, core)
            mine = np.arange(lo, hi, step, dtype=np.int64)
            # min(prev[j-1], prev[j], prev[j+1]) + wall[t][j]
            left = np.clip(mine - 1, 0, cols - 1)
            right = np.clip(mine + 1, 0, cols - 1)
            reads = np.stack(
                [
                    prev_row.addr(left),
                    prev_row.addr(mine),
                    prev_row.addr(right),
                    wall.addr(t * cols + mine),
                ],
                axis=1,
            ).ravel()
            builder.emit(core, reads)
            builder.emit(core, next_row.addr(mine), write=True)
    return builder.build(
        compute_cycles_per_access=1.5, description="Pathfinder DP (Rodinia)"
    )

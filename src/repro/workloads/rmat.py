"""R-MAT synthetic graph generation (the GAP workloads' input).

The paper evaluates the GAP kernels on large graphs and gnn on Reddit;
neither dataset ships with this reproduction, so we generate R-MAT
(Kronecker) graphs with the standard (a, b, c) = (0.57, 0.19, 0.19)
parameters GAP itself uses.  R-MAT reproduces the two properties that
drive cache behaviour: a power-law degree distribution (hub vertices
whose adjacency lists are heavily reused) and community-ish locality.

The output is a CSR structure (indptr, indices) in numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CsrGraph:
    """Compressed-sparse-row adjacency."""

    indptr: np.ndarray  # int64, length n_vertices + 1
    indices: np.ndarray  # int32, length n_edges

    @property
    def n_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        return len(self.indices)

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


def rmat_edges(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 1,
) -> np.ndarray:
    """Generate R-MAT edge pairs: shape (n_edges, 2), vertices < 2**scale.

    Each edge picks one quadrant per bit level with probabilities
    (a, b, c, 1-a-b-c), vectorised over all edges at once.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must leave room for d")
    n_vertices = 1 << scale
    n_edges = n_vertices * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(n_edges)
        bit_src = (r >= a + b).astype(np.int64)
        # Within each half, the split differs: given src-bit 0 the dst-bit
        # probability is b/(a+b); given src-bit 1 it is (1-a-b-c)/(c+d).
        r2 = rng.random(n_edges)
        d_prob = np.where(bit_src == 0, b / (a + b), (1 - a - b - c) / (1 - a - b))
        bit_dst = (r2 < d_prob).astype(np.int64)
        src = (src << 1) | bit_src
        dst = (dst << 1) | bit_dst
    return np.stack([src, dst], axis=1)


def build_csr(edges: np.ndarray, n_vertices: int, symmetric: bool = True) -> CsrGraph:
    """Build CSR from an edge array, removing self-loops and duplicates."""
    src, dst = edges[:, 0], edges[:, 1]
    if symmetric:
        src = np.concatenate([src, dst])
        dst = np.concatenate([edges[:, 1], edges[:, 0]])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = src * n_vertices + dst
    key = np.unique(key)
    src = key // n_vertices
    dst = key % n_vertices
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    indptr = np.cumsum(indptr)
    return CsrGraph(indptr=indptr, indices=dst.astype(np.int32))


def rmat_graph(scale: int, edge_factor: int = 8, seed: int = 1) -> CsrGraph:
    """Convenience: R-MAT edges -> symmetric CSR with permuted vertex ids.

    Raw R-MAT clusters hub vertices at low ids, which would give
    *artificial* cacheline-spatial locality to gathers indexed by vertex
    id.  Real graph workloads don't have that (the paper's premise that
    indirect streams exhibit little spatial locality), so we relabel
    vertices with a random permutation, as GAP's builder does by default.
    """
    edges = rmat_edges(scale, edge_factor, seed=seed)
    n_vertices = 1 << scale
    rng = np.random.default_rng(seed + 7)
    perm = rng.permutation(n_vertices)
    edges = perm[edges]
    return build_csr(edges, n_vertices)

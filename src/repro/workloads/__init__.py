"""Workload generators: GAP graph kernels, tensor, and Rodinia traces."""

from repro.workloads.base import (
    PAPER,
    SMALL,
    TINY,
    StreamHandle,
    WorkloadBuilder,
    WorkloadScale,
    concat_ranges,
    interleave_pairs,
    partition_range,
)
from repro.workloads.registry import (
    FACTORIES,
    REPRESENTATIVE,
    SUITE,
    build,
    build_suite,
)
from repro.workloads.rmat import CsrGraph, build_csr, rmat_edges, rmat_graph
from repro.workloads.trace import Trace, Workload, interleave

__all__ = [
    "PAPER",
    "SMALL",
    "TINY",
    "StreamHandle",
    "WorkloadBuilder",
    "WorkloadScale",
    "concat_ranges",
    "interleave_pairs",
    "partition_range",
    "FACTORIES",
    "REPRESENTATIVE",
    "SUITE",
    "build",
    "build_suite",
    "CsrGraph",
    "build_csr",
    "rmat_edges",
    "rmat_graph",
    "Trace",
    "Workload",
    "interleave",
]

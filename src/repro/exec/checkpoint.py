"""Append-only sweep checkpoints: resume an interrupted ``run_many``.

A :class:`SweepManifest` is one JSONL file journaling every cell a sweep
has finished — ``done`` cells by content-addressed key, ``poisoned``
cells with the captured failure.  Each line is flushed and fsync'd as it
is appended, so a suite killed mid-flight (``SIGINT``, ``kill -9``, OOM)
leaves a readable journal of everything it completed; re-running with
the same manifest (the CLI's ``--resume``) skips journaled cells —
``done`` reports are served from the persistent report cache, and
previously-poisoned cells are not burned through their retry budget
again.

Format (one JSON object per line)::

    {"kind": "header", "schema": 1, "stamp": "<code stamp>"}
    {"kind": "cell", "status": "done", "key": "<sha256>", ...metadata}
    {"kind": "cell", "status": "poisoned", "key": "...", "failure": ...,
     "attempts": N, "error": "<traceback tail>", ...metadata}

The header pins :func:`repro.exec.cache.code_stamp`: a manifest written
by different simulator code describes different results, so a stale
journal is rotated aside (``<path>.stale``) and the sweep starts fresh
rather than silently skipping cells that would now compute differently.
A torn final line (crash mid-append) is tolerated: parsing stops at the
first undecodable line.  A later ``done`` entry for a poisoned key
overrides the poisoning (a quarantined cell that was fixed and re-run).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

MANIFEST_SCHEMA = 1


class SweepManifest:
    """Journal of completed/poisoned cells for one resumable sweep."""

    def __init__(self, path: Path | str, stamp: str | None = None) -> None:
        if stamp is None:
            from repro.exec.cache import code_stamp

            stamp = code_stamp()
        self.path = Path(path)
        self.stamp = stamp
        self._done: set[str] = set()
        self._poisoned: dict[str, dict] = {}
        self._fh = None
        self._load()

    # -- reading -------------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        stale = False
        records: list[dict] = []
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from a crash mid-append; keep the prefix
            if not isinstance(record, dict):
                break
            if i == 0:
                if (
                    record.get("kind") != "header"
                    or record.get("schema") != MANIFEST_SCHEMA
                    or record.get("stamp") != self.stamp
                ):
                    stale = True
                    break
                continue
            records.append(record)
        if stale:
            try:
                os.replace(
                    self.path, self.path.with_name(self.path.name + ".stale")
                )
            except OSError:
                pass
            return
        for record in records:
            if record.get("kind") != "cell" or "key" not in record:
                continue
            key = record["key"]
            if record.get("status") == "done":
                self._done.add(key)
                self._poisoned.pop(key, None)
            elif record.get("status") == "poisoned":
                if key not in self._done:
                    self._poisoned[key] = record

    def is_done(self, key: str) -> bool:
        return key in self._done

    def is_poisoned(self, key: str) -> bool:
        return key in self._poisoned

    def poison_record(self, key: str) -> dict | None:
        return self._poisoned.get(key)

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def poisoned_count(self) -> int:
        return len(self._poisoned)

    # -- writing -------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                header = {
                    "kind": "header",
                    "schema": MANIFEST_SCHEMA,
                    "stamp": self.stamp,
                }
                self._fh.write(json.dumps(header) + "\n")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def journal_done(self, key: str, **meta) -> None:
        if key in self._done:
            return
        self._done.add(key)
        self._poisoned.pop(key, None)
        self._append({"kind": "cell", "status": "done", "key": key, **meta})

    def journal_poisoned(
        self, key: str, failure: str, attempts: int, error: str, **meta
    ) -> None:
        record = {
            "kind": "cell",
            "status": "poisoned",
            "key": key,
            "failure": failure,
            "attempts": attempts,
            "error": error[-2000:],
            **meta,
        }
        self._poisoned[key] = record
        self._append(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

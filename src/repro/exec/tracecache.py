"""Disk memoization of deterministic workload traces.

Workload generation (R-MAT graph synthesis in particular) is one of the
two hot spots of a cold suite run.  Every generator is a pure function of
``(name, scale)`` plus the generator source code, so its output — the
trace arrays plus stream metadata — can be persisted once and re-loaded
by every later process.

Storage format (``TRACE_SCHEMA`` 2): one *directory* per workload cell
holding the four trace arrays as raw ``.npy`` files plus a ``meta.json``
(streams, phases, compute cost, and per-array byte sizes/checksums).
Raw ``.npy`` — unlike the zipped ``.npz`` this replaces — can be loaded
with ``mmap_mode="r"``, so a trace is materialized in page cache once
and *shared read-only by every worker process* instead of being
decompressed per worker.  Entries are published atomically (temp dir +
``os.rename``) with the array files fsync'd first; a corrupt or
truncated entry (size mismatch, undecodable metadata) is quarantined
into ``<root>/quarantine/`` and rebuilt rather than crashing the run.

:meth:`TraceCache.get_or_build` adds the single-builder discipline for
concurrent sweeps: an exclusive ``flock`` per key means exactly one
process generates a missing trace while the others block and then mmap
the freshly published entry — two workers can no longer both compute
the same trace with one clobbering the other.

Keys include :func:`repro.exec.cache.code_stamp`, so editing any
generator invalidates the cache automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.stream import StreamConfig, StreamKind, StreamTable
from repro.exec.cache import _canonical, code_stamp, fsync_dir
from repro.obs.tracing import current
from repro.workloads.trace import Trace, Workload

TRACE_SCHEMA = 2

_ARRAYS = ("core", "addr", "write", "sid")


def workload_key(name: str, scale, stamp: str | None = None) -> str:
    """Content hash identifying one generated workload."""
    payload = {
        "stamp": stamp if stamp is not None else code_stamp(),
        "workload": name,
        "scale": _canonical(scale),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _stream_meta(stream: StreamConfig) -> dict:
    return {
        "sid": stream.sid,
        "kind": stream.kind.value,
        "base": stream.base,
        "size": stream.size,
        "elem_size": stream.elem_size,
        "read_only": stream.read_only,
        "dims": list(stream.dims),
        "order": stream.order,
        "name": stream.name,
    }


def _restore_streams(metas: list[dict]) -> StreamTable:
    table = StreamTable()
    for m in metas:
        table.configure(
            StreamConfig(
                sid=m["sid"],
                kind=StreamKind(m["kind"]),
                base=m["base"],
                size=m["size"],
                elem_size=m["elem_size"],
                read_only=m["read_only"],
                dims=tuple(m["dims"]),
                order=m["order"],
                name=m["name"],
            )
        )
    return table


@contextmanager
def _file_lock(path: Path):
    """Blocking exclusive flock on ``path``; yields whether it was taken.

    Platforms without ``fcntl`` (or unwritable cache roots) degrade to
    lockless behaviour — callers must still be correct, just without the
    build-once guarantee.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX
        yield False
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:
        yield False
        return
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            yield True
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
    finally:
        os.close(fd)


class TraceCache:
    """Persisted workload traces, one mmap-able directory per cell."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.lock_waits = 0  # get_or_build calls served by another builder
        self.quarantined = 0

    def _dir(self, key: str) -> Path:
        return self.root / "traces" / key[:2] / key

    def _lock_path(self, key: str) -> Path:
        return self.root / "locks" / f"{key}.lock"

    def _quarantine(self, entry: Path) -> None:
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            target = qdir / entry.name
            if target.exists():
                shutil.rmtree(target, ignore_errors=True)
            os.replace(entry, target)
        except OSError:
            return
        self.quarantined += 1

    def get(self, key: str, mmap: bool = True) -> Workload | None:
        with current().span("cache.trace_load", cat="io"):
            return self._get(key, mmap=mmap)

    def _get(self, key: str, mmap: bool = True) -> Workload | None:
        entry = self._dir(key)
        try:
            raw = (entry / "meta.json").read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            meta = json.loads(raw)
            if not isinstance(meta, dict):
                raise ValueError("metadata is not an object")
            if meta.get("schema") != TRACE_SCHEMA:
                # Recognized-but-different layout: stale, not corrupt.
                self.misses += 1
                return None
            arrays = {}
            for name in _ARRAYS:
                path = entry / f"{name}.npy"
                expected = meta["arrays"][name]["file_bytes"]
                if path.stat().st_size != expected:
                    raise ValueError(f"{name}.npy truncated or oversized")
                arrays[name] = np.load(
                    path, mmap_mode="r" if mmap else None, allow_pickle=False
                )
            trace = Trace(
                core=arrays["core"],
                addr=arrays["addr"],
                write=arrays["write"],
                sid=arrays["sid"],
            )
            workload = Workload(
                name=meta["name"],
                streams=_restore_streams(meta["streams"]),
                trace=trace,
                compute_cycles_per_access=meta["compute_cycles_per_access"],
                description=meta["description"],
                phases=[(pos, label) for pos, label in meta["phases"]],
            )
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(entry)
            self.misses += 1
            return None
        self.hits += 1
        return workload

    def put(self, key: str, workload: Workload) -> None:
        with current().span("cache.trace_write", cat="io"):
            self._put(key, workload)

    def _put(self, key: str, workload: Workload) -> None:
        entry = self._dir(key)
        tmp = entry.parent / f".build-{key[:16]}-{os.getpid()}"
        try:
            tmp.mkdir(parents=True, exist_ok=True)
            arrays_meta: dict[str, dict] = {}
            for name in _ARRAYS:
                data = np.ascontiguousarray(getattr(workload.trace, name))
                path = tmp / f"{name}.npy"
                with open(path, "wb") as f:
                    np.save(f, data)
                    f.flush()
                    os.fsync(f.fileno())
                blob = path.read_bytes()
                arrays_meta[name] = {
                    "file_bytes": len(blob),
                    "sha256": hashlib.sha256(blob).hexdigest(),
                }
            meta = {
                "schema": TRACE_SCHEMA,
                "name": workload.name,
                "streams": [_stream_meta(s) for s in workload.streams],
                "compute_cycles_per_access": workload.compute_cycles_per_access,
                "description": workload.description,
                "phases": [[pos, label] for pos, label in workload.phases],
                "arrays": arrays_meta,
            }
            with open(tmp / "meta.json", "w") as f:
                json.dump(meta, f)
                f.flush()
                os.fsync(f.fileno())
            try:
                os.rename(tmp, entry)
            except OSError:
                # Another builder published first (or a stale entry is in
                # the way): theirs is equivalent — ours is discarded.
                shutil.rmtree(tmp, ignore_errors=True)
                return
            fsync_dir(entry.parent)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            return

    def get_or_build(
        self, key: str, builder: Callable[[], Workload]
    ) -> Workload:
        """Fetch ``key``, or build it exactly once across processes.

        The fast path is lock-free.  On a miss, an exclusive per-key
        ``flock`` serializes builders: the winner generates and
        publishes the trace, everyone else blocks on the lock and then
        mmaps the winner's entry — duplicate generation work (and the
        write-write race where one builder clobbers the other) is gone.
        The built workload is read back from the cache so even the
        builder ends up on the shared mmap pages.
        """
        found = self.get(key)
        if found is not None:
            return found
        tracer = current()
        with tracer.span("cache.lock_wait", cat="io"):
            lock = _file_lock(self._lock_path(key))
            locked = lock.__enter__()
        try:
            if locked:
                found = self.get(key)
                if found is not None:
                    self.lock_waits += 1
                    return found
            with tracer.span("cache.trace_build", cat="io"):
                workload = builder()
            self.builds += 1
            self.put(key, workload)
        finally:
            lock.__exit__(None, None, None)
        return self.get(key) or workload

"""Disk memoization of deterministic workload traces.

Workload generation (R-MAT graph synthesis in particular) is one of the
two hot spots of a cold suite run.  Every generator is a pure function of
``(name, scale)`` plus the generator source code, so its output — the
trace arrays plus stream metadata — can be persisted once and re-loaded
by every later process.

Storage format: one ``.npz`` per workload cell holding the four trace
arrays plus a JSON metadata blob (streams, phases, compute cost) encoded
as a 0-d unicode array, so nothing is pickled and entries are inert
data.  Writes go through the same temp-file + ``os.replace`` dance as
the report cache.  Keys include :func:`repro.exec.cache.code_stamp`, so
editing any generator invalidates the cache automatically.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.core.stream import StreamConfig, StreamKind, StreamTable
from repro.exec.cache import _canonical, code_stamp
from repro.workloads.trace import Trace, Workload

TRACE_SCHEMA = 1


def workload_key(name: str, scale, stamp: str | None = None) -> str:
    """Content hash identifying one generated workload."""
    payload = {
        "stamp": stamp if stamp is not None else code_stamp(),
        "workload": name,
        "scale": _canonical(scale),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _stream_meta(stream: StreamConfig) -> dict:
    return {
        "sid": stream.sid,
        "kind": stream.kind.value,
        "base": stream.base,
        "size": stream.size,
        "elem_size": stream.elem_size,
        "read_only": stream.read_only,
        "dims": list(stream.dims),
        "order": stream.order,
        "name": stream.name,
    }


def _restore_streams(metas: list[dict]) -> StreamTable:
    table = StreamTable()
    for m in metas:
        table.configure(
            StreamConfig(
                sid=m["sid"],
                kind=StreamKind(m["kind"]),
                base=m["base"],
                size=m["size"],
                elem_size=m["elem_size"],
                read_only=m["read_only"],
                dims=tuple(m["dims"]),
                order=m["order"],
                name=m["name"],
            )
        )
    return table


class TraceCache:
    """Persisted workload traces, one ``.npz`` per (name, scale) cell."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / "traces" / key[:2] / f"{key}.npz"

    def get(self, key: str) -> Workload | None:
        path = self._path(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                if meta.get("schema") != TRACE_SCHEMA:
                    raise ValueError("unknown trace schema")
                trace = Trace(
                    core=data["core"],
                    addr=data["addr"],
                    write=data["write"],
                    sid=data["sid"],
                )
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return Workload(
            name=meta["name"],
            streams=_restore_streams(meta["streams"]),
            trace=trace,
            compute_cycles_per_access=meta["compute_cycles_per_access"],
            description=meta["description"],
            phases=[(pos, label) for pos, label in meta["phases"]],
        )

    def put(self, key: str, workload: Workload) -> None:
        meta = {
            "schema": TRACE_SCHEMA,
            "name": workload.name,
            "streams": [_stream_meta(s) for s in workload.streams],
            "compute_cycles_per_access": workload.compute_cycles_per_access,
            "description": workload.description,
            "phases": [[pos, label] for pos, label in workload.phases],
        }
        buf = io.BytesIO()
        np.savez_compressed(
            buf,
            core=workload.trace.core,
            addr=workload.trace.addr,
            write=workload.trace.write,
            sid=workload.trace.sid,
            meta=np.array(json.dumps(meta)),
        )
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(buf.getvalue())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return

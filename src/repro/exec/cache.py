"""Content-addressed, persistent result caching.

Every simulation cell — one (workload, policy, system config, scale,
fault schedule) combination — is deterministic, so its report can be
reused by any later process that asks for the same cell.  This module
provides the two ingredients:

* :func:`cell_key` — a stable SHA-256 digest over the *values* that
  determine a cell's result: the full system config, the workload name
  and scale, the policy name plus the caller-supplied variant key, the
  fault schedule, and a code stamp.
* :class:`ReportCache` — a directory of one JSON file per cell with
  atomic writes (temp file + ``os.replace``), so concurrent writers and
  killed processes can never leave a torn entry behind.

The code stamp (:func:`code_stamp`) hashes the source of every package
whose behaviour feeds a report (``sim``, ``core``, ``baselines``,
``workloads``, ``faults``) — any edit to simulator semantics silently
invalidates the whole cache, which is exactly what a reproduction
harness wants: stale results are worse than slow ones.

Environment knobs (see README):

* ``REPRO_CACHE_DIR`` — cache directory (default:
  ``$XDG_CACHE_HOME/repro-ndpext`` or ``~/.cache/repro-ndpext``).
* ``REPRO_DISK_CACHE=0`` — disable the persistent layer entirely (the
  in-process caches still apply).
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.obs.tracing import current
from repro.sim.metrics import SimulationReport

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_DISK_CACHE"

# Bump when the on-disk entry layout (not the simulated values) changes.
# Schema 2 added a sha256 checksum over the report payload; schema-1
# entries are treated as plain (stale-format) misses.
ENTRY_SCHEMA = 2

# Packages whose source determines simulation results; their content
# hash is part of every cell key.
_BEHAVIOR_PACKAGES = ("sim", "core", "baselines", "workloads", "faults")

_code_stamp_cache: str | None = None


@contextlib.contextmanager
def throwaway_cache_dir(prefix: str = "repro-throwaway-"):
    """Redirect ``REPRO_CACHE_DIR`` to a temp dir for the enclosed block.

    Used by the ``profile`` verb and the bench harness, which need runs
    that *actually execute* rather than hit the user's warm cache.  The
    environment variable is restored and the directory removed no
    matter how the block exits — a crashing profiled run cannot leak a
    directory or leave the redirect in place — and cleanup errors are
    swallowed (``ignore_cleanup_errors``): a worker killed mid-write may
    hold a file open briefly, and a leaked *empty* temp dir is better
    than masking the original exception.
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    with tempfile.TemporaryDirectory(
        prefix=prefix, ignore_cleanup_errors=True
    ) as tmp:
        try:
            os.environ[CACHE_DIR_ENV] = tmp
            yield Path(tmp)
        finally:
            if previous is None:
                os.environ.pop(CACHE_DIR_ENV, None)
            else:
                os.environ[CACHE_DIR_ENV] = previous


def cache_enabled() -> bool:
    """Whether the persistent cache layer is on (default: yes)."""
    return os.environ.get(CACHE_DISABLE_ENV, "1").lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def cache_root() -> Path:
    """The cache directory, honouring ``REPRO_CACHE_DIR`` / XDG."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-ndpext"


def code_stamp() -> str:
    """SHA-256 over the simulator's behaviour-determining source files.

    Computed once per process; any change to the hashed packages yields
    a different stamp and therefore a disjoint key space.
    """
    global _code_stamp_cache
    if _code_stamp_cache is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for package in _BEHAVIOR_PACKAGES:
            for path in sorted((root / package).rglob("*.py")):
                digest.update(str(path.relative_to(root)).encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
        _code_stamp_cache = digest.hexdigest()
    return _code_stamp_cache


def _canonical(value):
    """Recursively reduce a value to JSON-able primitives, keeping type
    names for dataclasses so e.g. two fault-event kinds with identical
    fields can never collide."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__type__": type(value).__name__, **body}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cell_key(
    workload: str,
    policy: str,
    config,
    scale,
    cache_key: str = "",
    faults=None,
    stamp: str | None = None,
) -> str:
    """Content hash identifying one simulation cell.

    ``cache_key`` is the caller's variant discriminator — required
    whenever a custom ``policy_factory`` changes behaviour without
    changing the policy name or the config (the established runner
    convention, e.g. ``"placement:consistent"``).
    """
    payload = {
        "stamp": stamp if stamp is not None else code_stamp(),
        "workload": workload,
        "policy": policy,
        "config": _canonical(config),
        "scale": _canonical(scale),
        "cache_key": cache_key,
        "faults": _canonical(faults),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` without ever exposing a torn file.

    The temp file is fsync'd *before* the rename and the directory
    after it: ``os.replace`` alone guarantees the entry is never torn,
    but on a power loss the rename can be persisted while the data
    blocks are not, leaving a validly-named file full of zeros.  A
    crash-safe cache has to pay both syncs.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=path.suffix)
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (persists renames within it)."""
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def payload_digest(payload) -> str:
    """Canonical sha256 over a JSON-able payload (sorted keys, fixed
    separators) — stable across a dump/load round trip, so a reader can
    re-derive it from the parsed entry."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class _CorruptEntry(Exception):
    """Internal: an entry that was read but failed validation."""


class ReportCache:
    """One checksummed JSON file per simulation cell, written atomically.

    Sharded by the first two key hex digits to keep directories small.
    ``get`` never fails a run: a missing or stale-schema entry is a
    plain miss, while an entry that fails JSON decode or its sha256
    checksum (torn write survived a crash, bit rot, truncation) is
    *quarantined* — moved into ``<root>/quarantine/`` and counted on
    ``self.quarantined`` — instead of silently deleted, so operators can
    inspect what corrupted and regression tests can assert recovery.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / "reports" / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        qdir = self.root / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            return
        self.quarantined += 1

    def get(self, key: str) -> SimulationReport | None:
        with current().span("cache.report_load", cat="io"):
            return self._get(key)

    def _get(self, key: str) -> SimulationReport | None:
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            try:
                data = json.loads(raw)
            except ValueError as exc:
                raise _CorruptEntry("undecodable JSON") from exc
            if not isinstance(data, dict):
                raise _CorruptEntry("entry is not an object")
            schema = data.get("schema")
            if schema != ENTRY_SCHEMA:
                if isinstance(schema, int):
                    # Recognized-but-older layout: stale, not corrupt.
                    self.misses += 1
                    return None
                raise _CorruptEntry(f"unrecognizable schema {schema!r}")
            if "report" not in data or data.get("sha256") != payload_digest(
                data["report"]
            ):
                raise _CorruptEntry("checksum mismatch")
            try:
                report = SimulationReport.from_json(data["report"])
            except (ValueError, KeyError, TypeError) as exc:
                raise _CorruptEntry("report failed to parse") from exc
        except _CorruptEntry:
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, key: str, report: SimulationReport) -> None:
        with current().span("cache.report_write", cat="io"):
            try:
                payload = report.to_json()
                entry = {
                    "schema": ENTRY_SCHEMA,
                    "sha256": payload_digest(payload),
                    "report": payload,
                }
                blob = json.dumps(entry).encode()
            except (TypeError, ValueError):
                # Non-serializable report (e.g. a test double): skip
                # caching rather than fail the run that produced it.
                return
            try:
                atomic_write_bytes(self._path(key), blob)
            except OSError:
                return


def default_report_cache() -> ReportCache | None:
    """The process-wide report cache, or ``None`` when disabled."""
    if not cache_enabled():
        return None
    return ReportCache(cache_root())

"""Execution infrastructure: parallel cell fan-out and persistent caches.

See DESIGN.md § "Execution & caching".  Public surface:

* :mod:`repro.exec.cache` — content-addressed report cache + cell keys.
* :mod:`repro.exec.tracecache` — disk memoization of workload traces.
* :mod:`repro.exec.parallel` — fork-pool execution of simulation cells.
* :mod:`repro.exec.bench` — the ``python -m repro bench`` harness.
"""

from repro.exec.cache import (
    ReportCache,
    cache_enabled,
    cache_root,
    cell_key,
    code_stamp,
)
from repro.exec.parallel import CellTask, run_cells
from repro.exec.tracecache import TraceCache, workload_key

__all__ = [
    "CellTask",
    "ReportCache",
    "TraceCache",
    "cache_enabled",
    "cache_root",
    "cell_key",
    "code_stamp",
    "run_cells",
    "workload_key",
]

"""Execution infrastructure: supervised fan-out and crash-safe caches.

See DESIGN.md § "Execution & caching" and § "Resilient execution".
Public surface:

* :mod:`repro.exec.cache` — content-addressed, checksummed report cache.
* :mod:`repro.exec.tracecache` — mmap-shared trace memoization with
  single-builder locking.
* :mod:`repro.exec.parallel` — supervised worker-pool execution
  (retry/timeout/backoff, poison-list quarantine).
* :mod:`repro.exec.checkpoint` — append-only sweep manifests (resume).
* :mod:`repro.exec.bench` — the ``python -m repro bench`` harness.
"""

from repro.exec.cache import (
    ReportCache,
    cache_enabled,
    cache_root,
    cell_key,
    code_stamp,
    throwaway_cache_dir,
)
from repro.exec.checkpoint import SweepManifest
from repro.exec.parallel import (
    CellExecutionError,
    CellTask,
    PoisonedCell,
    PoolOutcome,
    RetryPolicy,
    auto_jobs,
    run_cells,
    run_supervised,
)
from repro.exec.tracecache import TraceCache, workload_key

__all__ = [
    "CellExecutionError",
    "CellTask",
    "PoisonedCell",
    "PoolOutcome",
    "ReportCache",
    "RetryPolicy",
    "SweepManifest",
    "TraceCache",
    "auto_jobs",
    "cache_enabled",
    "cache_root",
    "cell_key",
    "code_stamp",
    "run_cells",
    "run_supervised",
    "throwaway_cache_dir",
    "workload_key",
]

"""The ``python -m repro bench`` harness.

Measures the three performance pillars this repo's execution layer
provides, and writes one ``BENCH_<date>.json`` so numbers can be
committed alongside the code they describe:

* **engine** — raw simulator throughput (trace accesses per second) on
  one representative cell, plus the vectorized grouped L1 filter against
  the legacy per-core loop it replaced (bit-equality is asserted while
  timing, so the speedup is for identical results).
* **suite** — wall clock for a policy-comparison grid run three ways:
  serial with a cold cache, parallel (``--jobs``) with a cold cache, and
  serial again against the warm persistent cache.  The warm run must
  perform zero simulations.
* **cache** — hit/miss counters and the measured round-trip cost of the
  persistent report store.

``--quick`` shrinks everything to the tiny preset for CI smoke runs.
``--check PREV.json`` feeds the fresh result through the regression
gate (:mod:`repro.obs.regress`): warn-only by default, hard exit with
``--check-strict``.
"""

from __future__ import annotations

import datetime
import json
import os
import time

import numpy as np

from repro.util import render_table


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def _legacy_l1_filter(epochs, params):
    """The engine's pre-vectorization hot loop, kept verbatim for the
    benchmark comparison: per epoch, per core, an independent window-LRU
    pass with the results scattered back."""
    from repro.sim.sram_cache import filter_through_l1

    masks = []
    for epoch in epochs:
        mask = np.zeros(len(epoch), dtype=bool)
        for core in np.unique(epoch.core):
            sel = epoch.core == core
            mask[sel] = filter_through_l1(epoch.addr[sel], params).hit_mask
        masks.append(mask)
    return masks


def _grouped_l1_filter(epochs, params, engine_cls):
    from repro.sim.sram_cache import filter_cores_through_l1

    orders = engine_cls._epoch_core_orders(epochs)
    return [
        filter_cores_through_l1(epoch.addr, epoch.core, params, order=order)
        for epoch, order in zip(epochs, orders)
    ]


def bench_engine(preset: str, workload_name: str, repeats: int) -> dict:
    """Throughput of one simulation cell + L1 filter speedup.

    The timed runs are untraced (published accesses/s stays the
    uninstrumented number); one extra traced run afterwards yields the
    ``phases`` breakdown — exclusive seconds and share of sim wall
    clock per engine phase — so the perf trajectory across PRs is
    *attributable*, not just a single scalar.
    """
    from repro.core import NdpExtPolicy
    from repro.experiments.runner import PRESETS, SCALES
    from repro.obs.perfreport import phase_summary
    from repro.obs.tracing import PerfTracer, activate
    from repro.sim import SimulationEngine
    from repro.workloads import SMALL, build

    config = PRESETS[preset]()
    scale = SCALES.get(preset, SMALL)
    workload = build(workload_name, scale)
    n_accesses = len(workload.trace)

    sim_times = []
    for _ in range(repeats):
        dt, _report = _time(
            SimulationEngine(config).run, workload, NdpExtPolicy()
        )
        sim_times.append(dt)
    best = min(sim_times)

    tracer = PerfTracer(process_label="bench", keep_events=False)
    with activate(tracer):
        SimulationEngine(config).run(workload, NdpExtPolicy())
    phases = phase_summary(tracer)

    epochs = workload.trace.epochs(config.epoch_accesses)
    l1_params = config.core.l1d
    legacy_dt, legacy_masks = _time(_legacy_l1_filter, epochs, l1_params)
    grouped_dt, grouped_masks = _time(
        _grouped_l1_filter, epochs, l1_params, SimulationEngine
    )
    for a, b in zip(legacy_masks, grouped_masks):
        if not np.array_equal(a, b):
            raise AssertionError("grouped L1 filter diverged from legacy loop")

    return {
        "preset": preset,
        "workload": workload_name,
        "accesses": n_accesses,
        "sim_seconds_best": best,
        "sim_seconds_all": sim_times,
        "accesses_per_second": n_accesses / best if best else 0.0,
        "l1_legacy_seconds": legacy_dt,
        "l1_grouped_seconds": grouped_dt,
        "l1_speedup": legacy_dt / grouped_dt if grouped_dt else 0.0,
        "phases": phases["phases"],
        "phase_sim_wall_s": phases["sim_wall_s"],
        "phase_coverage": phases["coverage"],
    }


def _assert_reports_identical(a, b, context: str) -> None:
    """Recursive dataclass-field equality — the timed backend runs must
    produce the same report bit for bit, or the speedup is meaningless."""
    from dataclasses import fields

    for f in fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if hasattr(va, "__dataclass_fields__"):
            _assert_reports_identical(va, vb, context)
        elif va != vb:
            raise AssertionError(
                f"{context}: report field {f.name} diverged: {va!r} != {vb!r}"
            )


def _kernel_cell(quick: bool):
    """The kernel-bound cell the backend speedup is measured on.

    The default bench cell spends much of its wall clock in shared
    float math (policy configure, miss-curve sampling) that is
    identical across backends and dilutes the ratio; this cell enlarges
    the epoch so the keyed scans the backends actually swap dominate.
    """
    from dataclasses import replace

    from repro.experiments.runner import PRESETS
    from repro.workloads import SMALL, TINY, build

    if quick:
        scale = TINY.scaled(accesses_per_core=12_000)
        config = replace(PRESETS["tiny"](), epoch_accesses=12_000)
    else:
        scale = SMALL.scaled(accesses_per_core=40_000)
        config = replace(PRESETS["small"](), epoch_accesses=160_000)
    return build("pr", scale), config


def bench_kernels(quick: bool, repeats: int) -> dict:
    """Per-backend throughput on the kernel-bound cell.

    Every available backend runs the same workload ``repeats`` times
    (min-of-repeats wall clock on both sides — single runs on this class
    of shared machine are ±20% noisy) and the reports are asserted
    bit-identical before any ratio is published.  ``kernel_speedup`` is
    the headline: numpy kernels over the pure-python reference loops.
    """
    from repro.core import NdpExtPolicy
    from repro.sim import SimulationEngine
    from repro.sim.engine import EngineOptions
    from repro.sim.kernels import numba_available

    workload, config = _kernel_cell(quick)
    n_accesses = len(workload.trace)
    backend_names = ["numpy", "python"] + (
        ["numba"] if numba_available() else []
    )
    backends: dict = {}
    reports: dict = {}
    for name in backend_names:
        times = []
        for _ in range(repeats):
            engine = SimulationEngine(config, EngineOptions(backend=name))
            dt, report = _time(engine.run, workload, NdpExtPolicy())
            times.append(dt)
        best = min(times)
        reports[name] = report
        backends[name] = {
            "seconds_best": best,
            "seconds_all": times,
            "accesses_per_second": n_accesses / best if best else 0.0,
        }
    for name in backend_names[1:]:
        _assert_reports_identical(
            reports["numpy"], reports[name], f"backend numpy vs {name}"
        )
    aps_numpy = backends["numpy"]["accesses_per_second"]
    aps_python = backends["python"]["accesses_per_second"]
    return {
        "workload": "pr",
        "accesses": n_accesses,
        "epoch_accesses": config.epoch_accesses,
        "numba_available": numba_available(),
        "backends": backends,
        "kernel_speedup": aps_numpy / aps_python if aps_python else 0.0,
        "reports_identical": True,
    }


def bench_paper(repeats: int) -> dict:
    """Throughput on a paper-scale *topology*: the full 128-unit mesh
    with million-access epoch structure, with the workload footprint and
    trace length scaled down so the cell finishes inside the CI budget
    (full PAPER scale is a 128M-access, tens-of-GB run).
    """
    from repro.core import NdpExtPolicy
    from repro.experiments.runner import PRESETS
    from repro.sim import SimulationEngine
    from repro.sim.params import MB
    from repro.workloads import PAPER, build

    scale = PAPER.scaled(
        accesses_per_core=4_096, footprint_bytes=512 * MB
    )
    config = PRESETS["paper"]().scaled(
        epoch_accesses=131_072, unit_cache_bytes=4 * MB
    )
    workload = build("mv", scale)
    n_accesses = len(workload.trace)
    times = []
    for _ in range(repeats):
        dt, _report = _time(
            SimulationEngine(config).run, workload, NdpExtPolicy()
        )
        times.append(dt)
    best = min(times)
    return {
        "preset": "paper",
        "workload": "mv",
        "n_units": config.n_units,
        "accesses": n_accesses,
        "epoch_accesses": config.epoch_accesses,
        "sim_seconds_best": best,
        "sim_seconds_all": times,
        "accesses_per_second": n_accesses / best if best else 0.0,
    }


def _suite_grid(workloads, policies):
    from repro.experiments.runner import Cell

    return [Cell(w, p) for w in workloads for p in policies]


def _run_suite(preset: str, workloads, policies, jobs: int) -> tuple[float, dict]:
    """One full grid pass in a fresh context; returns (seconds, counters)."""
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(preset=preset, jobs=jobs)
    dt, _ = _time(context.run_many, _suite_grid(workloads, policies))
    counters = {
        "cache_hits_mem": context.cache_hits_mem,
        "cache_hits_disk": context.cache_hits_disk,
        "cache_misses": context.cache_misses,
    }
    return dt, counters


def bench_suite(preset: str, workloads, policies, jobs: int) -> dict:
    """Grid wall-clock: serial cold vs parallel cold vs warm cache."""
    result: dict = {
        "preset": preset,
        "workloads": list(workloads),
        "policies": list(policies),
        "cells": len(workloads) * len(policies),
        "jobs": jobs,
    }
    from repro.exec.cache import throwaway_cache_dir

    with throwaway_cache_dir(prefix="repro-bench-") as tmp:
        # The manager restores REPRO_CACHE_DIR on any exit; inside the
        # block we point it at per-phase subdirectories so the serial
        # and parallel passes each start cold.
        os.environ["REPRO_CACHE_DIR"] = str(tmp / "serial")
        result["serial_cold_s"], result["serial_counters"] = _run_suite(
            preset, workloads, policies, jobs=1
        )
        # Same cache dir, fresh context: everything comes from disk.
        result["warm_s"], result["warm_counters"] = _run_suite(
            preset, workloads, policies, jobs=1
        )
        os.environ["REPRO_CACHE_DIR"] = str(tmp / "parallel")
        result["parallel_cold_s"], result["parallel_counters"] = _run_suite(
            preset, workloads, policies, jobs=jobs
        )
    result["parallel_speedup"] = (
        result["serial_cold_s"] / result["parallel_cold_s"]
        if result["parallel_cold_s"]
        else 0.0
    )
    result["warm_speedup"] = (
        result["serial_cold_s"] / result["warm_s"] if result["warm_s"] else 0.0
    )
    return result


def run_bench(quick: bool = False, jobs: int | None = None) -> dict:
    from repro.exec.cache import code_stamp
    from repro.exec.parallel import auto_jobs

    if jobs is None:
        # At least 2 so the parallel pass actually exercises the pool.
        jobs = max(2, auto_jobs())
    if quick:
        preset = "tiny"
        workloads = ("pr", "hotspot")
        policies = ("ndpext", "nexus")
        repeats = 2
    else:
        preset = "small"
        workloads = ("pr", "hotspot", "recsys", "mv")
        policies = ("ndpext", "nexus", "ndpext-static", "jigsaw")
        repeats = 3
    return {
        "date": datetime.date.today().isoformat(),
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "code_stamp": code_stamp()[:16],
        "engine": bench_engine(preset, workloads[0], repeats),
        "kernels": bench_kernels(quick, max(repeats, 3)),
        "engine_paper": bench_paper(max(1, repeats - 1)),
        "suite": bench_suite(preset, workloads, policies, jobs),
    }


HISTORY_CAP = 20


def _history_snapshot(payload: dict) -> dict:
    """The few headline numbers one bench run contributes to the rolling
    history carried inside the JSON (flat dotted keys so the regression
    gate can look them up the same way it reads the live payload)."""
    from repro.obs.regress import _lookup

    snap = {
        "date": payload.get("date"),
        "code_stamp": payload.get("code_stamp"),
    }
    for dotted in (
        "engine.accesses_per_second",
        "kernels.kernel_speedup",
        "engine_paper.accesses_per_second",
    ):
        value = _lookup(payload, dotted)
        if value is not None:
            snap[dotted] = value
    return snap


def roll_history(result: dict, previous: dict | None) -> None:
    """Attach the rolling throughput history to a fresh bench payload.

    The previous file's history is carried forward with the previous
    run's own headline numbers appended, capped at :data:`HISTORY_CAP`
    entries (oldest dropped).  The regression gate compares the fresh
    run against the *best* of this history, so one slow baseline run
    can never mask a real regression ratchet-style.
    """
    history = []
    if previous is not None:
        history = [
            entry
            for entry in previous.get("history", [])
            if isinstance(entry, dict)
        ]
        history.append(_history_snapshot(previous))
    result["history"] = history[-HISTORY_CAP:]


def cmd_bench(args) -> None:
    jobs = getattr(args, "jobs", 1)
    result = run_bench(quick=args.quick, jobs=jobs if jobs > 1 else None)
    previous = None
    check_path = getattr(args, "check", None)
    if check_path and os.path.exists(check_path):
        from repro.obs.regress import load_bench

        try:
            previous = load_bench(check_path)
        except ValueError:
            previous = None
    roll_history(result, previous)
    out = args.out or f"BENCH_{result['date']}.json"
    with open(out, "w") as f:
        json.dump(result, f, indent=2)
    engine = result["engine"]
    kernels = result["kernels"]
    paper = result["engine_paper"]
    suite = result["suite"]
    backend_row = " / ".join(
        f"{name} {row['accesses_per_second']:,.0f}/s"
        for name, row in kernels["backends"].items()
    )
    print(
        render_table(
            ["metric", "value"],
            [
                ["engine accesses/s", f"{engine['accesses_per_second']:,.0f}"],
                ["kernel backends", backend_row],
                [
                    "kernel speedup (numpy vs python)",
                    f"{kernels['kernel_speedup']:.2f}x",
                ],
                [
                    f"paper mesh ({paper['n_units']} units) accesses/s",
                    f"{paper['accesses_per_second']:,.0f}",
                ],
                ["L1 filter speedup (grouped vs legacy)", f"{engine['l1_speedup']:.2f}x"],
                ["suite cells", str(suite["cells"])],
                ["suite serial cold", f"{suite['serial_cold_s']:.2f} s"],
                [
                    f"suite parallel cold (jobs={suite['jobs']})",
                    f"{suite['parallel_cold_s']:.2f} s ({suite['parallel_speedup']:.2f}x)",
                ],
                ["suite warm cache", f"{suite['warm_s']:.2f} s ({suite['warm_speedup']:.2f}x)"],
                [
                    "warm run simulations",
                    str(suite["warm_counters"]["cache_misses"]),
                ],
            ],
            title=f"bench ({'quick' if result['quick'] else 'full'})",
        )
    )
    top = sorted(
        engine.get("phases", {}).items(),
        key=lambda kv: -kv[1]["exclusive_s"],
    )[:5]
    if top:
        print(
            render_table(
                ["phase", "excl s", "share of sim wall"],
                [
                    [name, f"{row['exclusive_s']:.3f}", f"{row['share']:.1%}"]
                    for name, row in top
                ],
                title=(
                    "engine phase breakdown "
                    f"(coverage {engine.get('phase_coverage', 0):.1%})"
                ),
            )
        )
    print(f"[bench] wrote {out}")
    _check_floors(result, args)
    if getattr(args, "check", None):
        _check_against(result, args)


def _check_floors(result: dict, args) -> None:
    """Absolute invariants (e.g. parallel_speedup > 1) — no baseline
    file required, so the gate holds on first runs too."""
    from repro.obs.regress import check_floors, floor_rows

    checks = check_floors(result)
    if not checks:
        return
    print(
        render_table(
            ["metric", "floor", "current", "status"],
            floor_rows(checks),
            title="absolute invariants",
        )
    )
    failed = [c for c in checks if c.failed]
    if failed:
        names = ", ".join(c.metric for c in failed)
        if getattr(args, "check_strict", False):
            raise SystemExit(f"[bench] BELOW FLOOR: {names}")
        print(
            f"[bench] warning: below floor: {names} "
            "(warn-only; use --check-strict to fail)"
        )


def _check_phase_shares(result: dict, args) -> None:
    """Warn when an engine phase's share of sim wall clock shifted.

    Always warn-only (even under ``--check-strict``): a share shift is
    attribution news — where the time went moved — not by itself a
    slowdown; the wall-clock metrics gate that.
    """
    from repro.obs.regress import (
        PHASE_SHARE_WARN_PTS,
        compare_phase_shares,
        load_bench,
        phase_share_rows,
    )

    try:
        previous = load_bench(args.check)
    except (OSError, ValueError):
        return
    deltas = compare_phase_shares(result, previous)
    if not deltas:
        return
    print(
        render_table(
            ["phase", "prev share %", "cur share %", "moved pts", "status"],
            phase_share_rows(deltas),
            title=(
                "engine phase shares vs previous "
                f"(warn beyond {PHASE_SHARE_WARN_PTS:.0f} pts)"
            ),
        )
    )
    shifted = [d for d in deltas if d.failed]
    if shifted:
        names = ", ".join(d.phase for d in shifted)
        print(
            f"[bench] note: phase share moved >"
            f"{PHASE_SHARE_WARN_PTS:.0f} pts: {names} "
            "(attribution shift; informational)"
        )


def _check_against(result: dict, args) -> None:
    """Compare the fresh result against ``args.check`` via the gate."""
    from repro.obs.regress import DEFAULT_THRESHOLD, check_bench, delta_rows

    threshold = (
        args.check_threshold
        if getattr(args, "check_threshold", None) is not None
        else DEFAULT_THRESHOLD
    )
    strict = bool(getattr(args, "check_strict", False))
    if not os.path.exists(args.check):
        message = f"[bench] previous bench {args.check} not found; skipping check"
        if strict:
            raise SystemExit(message.replace("skipping check", "--check-strict"))
        print(message)
        return
    try:
        deltas, failed = check_bench(result, args.check, threshold=threshold)
    except ValueError as exc:
        if strict:
            raise SystemExit(f"[bench] {exc}") from exc
        print(f"[bench] check skipped: {exc}")
        return
    print(
        render_table(
            ["metric", "previous", "current", "regression", "status"],
            delta_rows(deltas),
            title=f"regression gate vs {args.check} (threshold {threshold:.0%})",
        )
    )
    _check_phase_shares(result, args)
    if failed:
        names = ", ".join(d.metric for d in failed)
        if strict:
            raise SystemExit(
                f"[bench] REGRESSED beyond {threshold:.0%}: {names}"
            )
        print(
            f"[bench] warning: regressed beyond {threshold:.0%}: {names} "
            "(warn-only; use --check-strict to fail)"
        )
    else:
        print(f"[bench] regression gate passed ({len(deltas)} metrics)")

"""Supervised worker-pool execution of independent simulation cells.

Simulation cells are embarrassingly parallel — each one owns its engine,
policy, and fault state — so a batch of cells fans out across cores.
Unlike the ``Pool.map`` fan-out this module replaces, execution is
*supervised*: paper-scale sweeps run for hours, and a single worker
crash, hang, or OOM kill must cost one retry, not the whole suite.

* **Long-lived workers, per-worker pipes.**  Workers are forked once per
  batch and fed one cell at a time over a private duplex pipe, so a
  ``SIGKILL``-ed worker can never corrupt a shared queue lock.  With the
  ``fork`` start method nothing is pickled on the way in — workers
  inherit the task list (policy factories may be arbitrary closures);
  only small control tuples and the resulting
  :class:`~repro.sim.metrics.SimulationReport` cross the pipe.
* **Longest-first scheduling.**  Tasks are ordered by estimated cost
  (trace length, or a scale-derived estimate for lazy tasks) so the
  biggest cells start first and the tail of the batch stays balanced.
  Cells sharing a workload are interleaved across distinct workloads so
  concurrent workers build *different* traces under the single-builder
  lock (:mod:`repro.exec.tracecache`) instead of serializing on one.
* **Supervision.**  The parent waits on worker pipes *and* process
  sentinels: a death (exit code, kill, OOM) or a hang (per-cell
  wall-clock deadline derived from the cell's estimated size) is
  detected, the worker is killed/reaped, a replacement is forked, and
  the cell is retried with seeded exponential backoff.  Cells that
  exhaust their attempt budget are quarantined into a poison list with
  the captured traceback — the rest of the sweep completes.
* **Bit identity.**  Every cell is simulated by exactly the same code as
  the serial path, so results are bit-identical to running the loop
  in-process (asserted in ``tests/exec``), including under injected
  worker kills.

Chaos injection (used by tests and the CI chaos-smoke job): setting
``REPRO_CHAOS_KILL_EVERY=N`` makes each *worker* SIGKILL itself before
the first attempt of every N-th cell.  The supervisor must recover and
the final reports must stay bit-identical.  The knob has no effect on
serial (in-process) execution.

Platforms without ``fork`` (or ``jobs <= 1``) fall back to a serial loop
with the same retry/quarantine semantics (no timeouts — a hang cannot be
killed without process isolation).
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import random
import signal
import time
import traceback
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Sequence

from repro.faults import FaultSchedule
from repro.obs.tracing import PerfTracer, activate, current
from repro.sim import (
    EngineOptions,
    SimulationEngine,
    SimulationReport,
    SystemConfig,
)
from repro.workloads.base import WorkloadScale
from repro.workloads.trace import Workload

CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_EVERY"


@dataclass
class CellTask:
    """Everything needed to simulate one cell.

    The workload may be *lazy*: with ``workload=None`` and
    ``workload_name``/``scale`` set, the trace is materialized where the
    task runs (in a worker, under the trace cache's single-builder lock)
    instead of serially in the parent — overlapping trace generation
    with simulation across workers.
    """

    workload: Workload | None
    config: SystemConfig
    policy_factory: Callable[[], object]
    faults: FaultSchedule | None = None
    workload_name: str | None = None
    scale: WorkloadScale | None = None
    label: str = ""
    backend: str = "numpy"

    def materialize(self) -> Workload:
        if self.workload is None:
            if self.workload_name is None:
                raise ValueError("lazy CellTask needs workload_name")
            from repro.workloads import build

            self.workload = build(self.workload_name, self.scale)
        return self.workload

    def est_accesses(self) -> int:
        """Estimated trace length, for scheduling and timeout derivation."""
        if self.workload is not None:
            return len(self.workload.trace)
        if self.scale is not None:
            return int(self.scale.n_cores * self.scale.accesses_per_core)
        return 0

    def run(self) -> SimulationReport:
        tracer = current()
        with tracer.span("task.materialize", cat="task"):
            workload = self.materialize()
        engine = SimulationEngine(
            self.config,
            EngineOptions(backend=self.backend),
            faults=self.faults,
        )
        with tracer.span("task.simulate", cat="task"):
            return engine.run(workload, self.policy_factory())


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, backoff, and timeout semantics for one batch.

    ``max_attempts`` bounds total tries per cell (first attempt
    included).  Backoff between attempts is exponential with a seeded
    jitter — deterministic in ``(seed, cell index, attempt)``, so a
    replayed sweep waits the same way.  The per-cell wall-clock deadline
    is ``timeout_s`` when set; otherwise it is derived from the cell's
    estimated trace length via a deliberately pessimistic throughput
    floor, so a legitimate big cell is never killed but a wedged worker
    does not stall the sweep forever.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0
    timeout_s: float | None = None
    timeout_floor_s: float = 60.0
    timeout_accesses_per_s: float = 20_000.0

    def backoff_s(self, index: int, attempt: int) -> float:
        # Tuples of ints hash deterministically (unlike str), so the
        # jitter is stable across processes and PYTHONHASHSEED values.
        rng = random.Random(hash((self.seed, index, attempt)))
        step = min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** max(0, attempt - 1)),
        )
        return step * (0.5 + 0.5 * rng.random())

    def timeout_for(self, est_accesses: int) -> float:
        if self.timeout_s is not None:
            return self.timeout_s
        return max(
            self.timeout_floor_s, est_accesses / self.timeout_accesses_per_s
        )


@dataclass
class PoisonedCell:
    """One cell that exhausted its attempt budget."""

    index: int
    attempts: int
    kind: str  # "exception" | "worker-death" | "timeout"
    error: str
    label: str = ""


@dataclass
class PoolOutcome:
    """What a supervised batch produced, successes and casualties both."""

    reports: list[SimulationReport | None]
    poisoned: list[PoisonedCell] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    attempts: int = 0


class CellExecutionError(RuntimeError):
    """Raised when a batch finishes with quarantined cells."""

    def __init__(self, poisoned: Sequence[PoisonedCell]) -> None:
        self.poisoned = list(poisoned)
        lines = [
            f"{len(self.poisoned)} cell(s) quarantined after repeated failures:"
        ]
        for cell in self.poisoned:
            head = cell.error.strip().splitlines()
            lines.append(
                f"  [{cell.index}] {cell.label or 'cell'}: {cell.kind} after "
                f"{cell.attempts} attempt(s): {head[-1] if head else ''}"
            )
        super().__init__("\n".join(lines))


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# `--jobs auto` never asks for more workers than this: past a moderate
# fan-out the single-builder trace lock and the supervisor pipe become
# the bottleneck, and oversubscribing CPUs only adds scheduling noise.
AUTO_JOBS_CAP = 8


def auto_jobs(cap: int = AUTO_JOBS_CAP) -> int:
    """Derive a worker count from the machine (`--jobs auto`).

    Leaves one CPU for the supervisor/OS on multi-core boxes, capped at
    ``cap``; single-CPU machines get one worker (serial — the pool
    cannot win there, as the bench floors document).
    """
    cpus = os.cpu_count() or 1
    if cpus <= 2:
        # 1 CPU -> serial; 2 CPUs -> both (a lone worker would serialize
        # anyway, and the supervisor mostly sleeps in poll()).
        return cpus
    return max(1, min(cap, cpus - 1))


def schedule_order(tasks: Sequence[CellTask]) -> list[int]:
    """Longest-first task order, interleaved across workload groups.

    Groups sharing one workload are round-robined (group order by
    estimated cost, descending) so that concurrent workers materialize
    *distinct* traces — the single-builder lock then never idles a
    worker that could be generating a different workload.
    """
    groups: dict[tuple, list[int]] = {}
    for i, task in enumerate(tasks):
        if task.workload is not None:
            key = ("obj", id(task.workload))
        else:
            key = ("lazy", task.workload_name, task.scale)
        groups.setdefault(key, []).append(i)
    ranked = sorted(
        groups.values(),
        key=lambda idxs: max(tasks[i].est_accesses() for i in idxs),
        reverse=True,
    )
    order: list[int] = []
    for rank in range(max(len(g) for g in ranked)):
        for group in ranked:
            if rank < len(group):
                order.append(group[rank])
    return order


def _noop_event(kind: str, **fields) -> None:
    return None


# ---------------------------------------------------------------------------
# Worker side.


def _worker_main(conn, tasks: Sequence[CellTask], trace: bool = False) -> None:
    """Worker loop: receive (index, attempt), simulate, send the report.

    SIGINT is ignored so a Ctrl+C in the parent's terminal (delivered to
    the whole process group) leaves shutdown sequencing to the
    supervisor — which journals completed cells before dying.

    With ``trace`` on, one :class:`PerfTracer` lives for the worker's
    whole lifetime and its recorded spans are shipped as per-task
    snapshot *deltas* on the result tuple (the anchors persist across
    ``reset()``, so all deltas share one timebase).  The time spent
    serializing and sending task N's report is itself a span
    (``task.send``) — it necessarily travels with task N+1's snapshot,
    since a snapshot cannot contain the send that ships it.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        chaos_every = int(os.environ.get(CHAOS_KILL_ENV, "0") or 0)
    except ValueError:
        chaos_every = 0
    wtracer = PerfTracer(process_label=f"worker-{os.getpid()}") if trace else None
    with activate(wtracer) if wtracer is not None else nullcontext():
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, index, attempt = msg
            if chaos_every > 0 and attempt == 0 and index % chaos_every == 0:
                os.kill(os.getpid(), signal.SIGKILL)
            try:
                if wtracer is None:
                    report = tasks[index].run()
                    conn.send(("done", index, attempt, report, None))
                else:
                    with wtracer.span(
                        "task",
                        cat="task",
                        index=index,
                        attempt=attempt,
                        label=tasks[index].label,
                    ):
                        report = tasks[index].run()
                    snap = wtracer.snapshot()
                    wtracer.reset()
                    with wtracer.span("task.send", cat="task", index=index):
                        conn.send(("done", index, attempt, report, snap))
            except BaseException:
                if wtracer is not None:
                    snap = wtracer.snapshot()
                    wtracer.reset()
                else:
                    snap = None
                try:
                    conn.send(
                        ("error", index, attempt, traceback.format_exc(), snap)
                    )
                except (OSError, ValueError):
                    break


# ---------------------------------------------------------------------------
# Supervisor side.


class _Worker:
    __slots__ = ("proc", "conn", "index", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.index: int | None = None  # in-flight task, None when idle
        self.deadline: float = 0.0


class _Supervisor:
    """Drives one batch: assignment, liveness, deadlines, retries."""

    def __init__(
        self,
        tasks: Sequence[CellTask],
        jobs: int,
        policy: RetryPolicy,
        outcome: PoolOutcome,
        on_result,
        emit,
        tracer=None,
    ) -> None:
        self.tasks = tasks
        self.jobs = jobs
        self.policy = policy
        self.outcome = outcome
        self.on_result = on_result
        self.emit = emit
        self.tracer = tracer if tracer is not None else current()
        self.ctx = multiprocessing.get_context("fork")
        self.pending: deque[int] = deque(schedule_order(tasks))
        self.delayed: list[tuple[float, int]] = []  # (ready time, index)
        self.attempts = [0] * len(tasks)
        self.workers: list[_Worker] = []
        self.done = 0

    # -- lifecycle ----------------------------------------------------

    def spawn(self) -> _Worker:
        parent_conn, child_conn = self.ctx.Pipe()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(child_conn, self.tasks, self.tracer.enabled),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn)
        self.workers.append(worker)
        return worker

    def shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in self.workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join()
            worker.conn.close()
        self.workers.clear()

    # -- bookkeeping --------------------------------------------------

    def assign(self, worker: _Worker, index: int) -> None:
        worker.index = index
        worker.deadline = time.monotonic() + self.policy.timeout_for(
            self.tasks[index].est_accesses()
        )
        self.tracer.instant(
            "pool.dispatch",
            cat="pool",
            index=index,
            pid=worker.proc.pid,
            attempt=self.attempts[index],
        )
        worker.conn.send(("run", index, self.attempts[index]))

    def succeed(self, index: int, report: SimulationReport) -> None:
        self.outcome.attempts += 1
        self.outcome.reports[index] = report
        self.done += 1
        if self.on_result is not None:
            self.on_result(index, report)

    def fail(self, index: int, kind: str, error: str) -> None:
        self.attempts[index] += 1
        self.outcome.attempts += 1
        if kind == "timeout":
            self.outcome.timeouts += 1
        elif kind == "worker-death":
            self.outcome.worker_deaths += 1
        label = self.tasks[index].label
        if self.attempts[index] >= self.policy.max_attempts:
            self.outcome.poisoned.append(
                PoisonedCell(
                    index=index,
                    attempts=self.attempts[index],
                    kind=kind,
                    error=error,
                    label=label,
                )
            )
            self.done += 1
            self.emit(
                "exec_quarantine",
                index=index,
                label=label,
                attempts=self.attempts[index],
                failure=kind,
                error=error[-2000:],
            )
            self.tracer.instant(
                "pool.quarantine", cat="pool", index=index, failure=kind
            )
        else:
            self.outcome.retries += 1
            backoff = self.policy.backoff_s(index, self.attempts[index])
            self.emit(
                "exec_retry",
                index=index,
                label=label,
                attempt=self.attempts[index],
                failure=kind,
                backoff_s=backoff,
            )
            self.tracer.instant(
                "pool.retry",
                cat="pool",
                index=index,
                failure=kind,
                backoff_s=backoff,
            )
            heapq.heappush(self.delayed, (time.monotonic() + backoff, index))

    def handle_message(self, worker: _Worker, msg) -> None:
        kind, index, _attempt, payload, snapshot = msg
        worker.index = None
        if snapshot is not None and self.tracer.enabled:
            self.tracer.merge(snapshot)
        if kind == "done":
            self.succeed(index, payload)
        else:
            self.fail(index, "exception", payload)

    def drain(self, worker: _Worker) -> bool:
        """Deliver a buffered final message from a dying/dead worker.

        Returns True when the in-flight cell was resolved by it — a
        worker killed just after sending its report must not cost a
        retry (and must never double-count the result).
        """
        try:
            if not worker.conn.poll(0):
                return False
            msg = worker.conn.recv()
        except Exception:
            return False
        self.handle_message(worker, msg)
        return True

    def reap(self, worker: _Worker, kind: str, error: str) -> None:
        """Remove a dead (or killed) worker, failing its in-flight cell."""
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join()
        if worker.index is not None and not self.drain(worker):
            self.fail(worker.index, kind, error)
            worker.index = None
        worker.conn.close()
        self.workers.remove(worker)

    # -- main loop ----------------------------------------------------

    def run(self) -> PoolOutcome:
        total = len(self.tasks)
        try:
            for _ in range(min(self.jobs, total)):
                self.spawn()
            while self.done < total:
                now = time.monotonic()
                while self.delayed and self.delayed[0][0] <= now:
                    self.pending.append(heapq.heappop(self.delayed)[1])
                for worker in self.workers:
                    if not self.pending:
                        break
                    if worker.index is None:
                        self.assign(worker, self.pending.popleft())
                busy = [w for w in self.workers if w.index is not None]
                if not busy:
                    if self.delayed:
                        time.sleep(
                            max(0.0, self.delayed[0][0] - time.monotonic())
                        )
                        continue
                    if self.pending:
                        # Every worker died; rebuild the pool.
                        while len(self.workers) < min(
                            self.jobs, len(self.pending)
                        ):
                            self.spawn()
                        continue
                    break  # pragma: no cover - defensive
                timeout = min(w.deadline for w in busy) - now
                if self.delayed:
                    timeout = min(timeout, self.delayed[0][0] - now)
                with self.tracer.span("pool.wait", cat="pool"):
                    ready = connection.wait(
                        [w.conn for w in busy] + [w.proc.sentinel for w in busy],
                        timeout=max(0.0, timeout),
                    )
                for worker in list(busy):
                    if worker not in self.workers:
                        continue  # already reaped this round
                    if worker.conn in ready:
                        try:
                            msg = worker.conn.recv()
                        except Exception:
                            # EOF or a torn pickle from a dying worker.
                            self.reap(
                                worker,
                                "worker-death",
                                f"worker pid {worker.proc.pid} died "
                                f"(exitcode {worker.proc.exitcode})",
                            )
                            continue
                        self.handle_message(worker, msg)
                    elif worker.proc.sentinel in ready:
                        self.reap(
                            worker,
                            "worker-death",
                            f"worker pid {worker.proc.pid} died "
                            f"(exitcode {worker.proc.exitcode})",
                        )
                now = time.monotonic()
                for worker in [w for w in self.workers if w.index is not None]:
                    if worker.deadline <= now:
                        index = worker.index
                        limit = self.policy.timeout_for(
                            self.tasks[index].est_accesses()
                        )
                        self.reap(
                            worker,
                            "timeout",
                            f"cell {index} exceeded its {limit:.1f}s "
                            "wall-clock deadline; worker killed",
                        )
                # Keep the pool sized to the remaining work.
                remaining = total - self.done
                while len(self.workers) < min(self.jobs, max(remaining, 0)):
                    self.spawn()
        finally:
            self.shutdown()
        return self.outcome


def _run_serial(
    tasks: Sequence[CellTask],
    policy: RetryPolicy,
    outcome: PoolOutcome,
    on_result,
    emit,
    tracer=None,
) -> PoolOutcome:
    tracer = tracer if tracer is not None else current()
    for index, task in enumerate(tasks):
        attempt = 0
        while True:
            try:
                with tracer.span(
                    "task", cat="task", index=index, attempt=attempt,
                    label=task.label,
                ):
                    report = task.run()
            except KeyboardInterrupt:
                raise
            except BaseException:
                error = traceback.format_exc()
                outcome.attempts += 1
                attempt += 1
                if attempt >= policy.max_attempts:
                    outcome.poisoned.append(
                        PoisonedCell(
                            index=index,
                            attempts=attempt,
                            kind="exception",
                            error=error,
                            label=task.label,
                        )
                    )
                    emit(
                        "exec_quarantine",
                        index=index,
                        label=task.label,
                        attempts=attempt,
                        failure="exception",
                        error=error[-2000:],
                    )
                    break
                outcome.retries += 1
                backoff = policy.backoff_s(index, attempt)
                emit(
                    "exec_retry",
                    index=index,
                    label=task.label,
                    attempt=attempt,
                    failure="exception",
                    backoff_s=backoff,
                )
                time.sleep(backoff)
                continue
            outcome.attempts += 1
            outcome.reports[index] = report
            if on_result is not None:
                on_result(index, report)
            break
    return outcome


def run_supervised(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    policy: RetryPolicy | None = None,
    on_result: Callable[[int, SimulationReport], None] | None = None,
    on_event: Callable[..., None] | None = None,
    tracer=None,
) -> PoolOutcome:
    """Run a batch under supervision; never raises for cell failures.

    ``on_result(index, report)`` fires in the parent as each cell
    completes (in completion order, not submission order) — callers use
    it to persist results incrementally, so an interrupt loses at most
    the in-flight cells.  ``on_event(kind, **fields)`` mirrors retry /
    quarantine decisions into the caller's recorder.  Reports come back
    indexed by submission order; quarantined cells leave ``None`` and an
    entry in ``outcome.poisoned``.

    ``tracer`` (default: the ambient :func:`~repro.obs.tracing.current`)
    collects the batch's perf timeline: supervisor wait/dispatch spans
    in the parent, per-task spans shipped back from workers with
    clock-offset correction.  With the null tracer nothing is recorded
    or shipped.
    """
    tasks = list(tasks)
    policy = policy or RetryPolicy()
    outcome = PoolOutcome(reports=[None] * len(tasks))
    emit = on_event or _noop_event
    tracer = tracer if tracer is not None else current()
    if not tasks:
        return outcome
    if jobs <= 1 or not fork_available():
        with tracer.span("pool.run", cat="pool", jobs=1, cells=len(tasks)):
            return _run_serial(tasks, policy, outcome, on_result, emit, tracer)
    supervisor = _Supervisor(
        tasks, min(jobs, len(tasks)), policy, outcome, on_result, emit, tracer
    )
    with tracer.span(
        "pool.run", cat="pool", jobs=supervisor.jobs, cells=len(tasks)
    ):
        return supervisor.run()


def run_cells(
    tasks: Sequence[CellTask],
    jobs: int = 1,
    policy: RetryPolicy | None = None,
) -> list[SimulationReport]:
    """Simulate every task; returns reports in task order.

    Thin strict wrapper over :func:`run_supervised`: quarantined cells
    raise :class:`CellExecutionError` (after the rest of the batch has
    completed) instead of returning partial results.
    """
    outcome = run_supervised(tasks, jobs=jobs, policy=policy)
    if outcome.poisoned:
        raise CellExecutionError(outcome.poisoned)
    return outcome.reports

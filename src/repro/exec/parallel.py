"""Process-pool execution of independent simulation cells.

Simulation cells are embarrassingly parallel — each one owns its engine,
policy, and fault state — so a batch of cells fans out across cores with
``fork``-based ``multiprocessing``:

* The prepared tasks (workload arrays included) are published in a
  module global *before* the pool forks, so workers inherit them via
  copy-on-write instead of pickling multi-megabyte traces through pipes.
  This also means policy factories may be arbitrary closures — nothing
  about a task is ever pickled, only the small integer index into the
  task list and the resulting :class:`SimulationReport`.
* ``Pool.map`` preserves submission order, and every cell is simulated
  by exactly the same code as the serial path, so results are
  bit-identical to running the loop in-process (asserted in
  ``tests/exec``).

Platforms without ``fork`` (or ``jobs <= 1``) fall back to the plain
serial loop transparently.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.faults import FaultSchedule
from repro.sim import SimulationEngine, SimulationReport, SystemConfig
from repro.workloads.trace import Workload


@dataclass
class CellTask:
    """Everything needed to simulate one cell, fully materialized."""

    workload: Workload
    config: SystemConfig
    policy_factory: Callable[[], object]
    faults: FaultSchedule | None = None

    def run(self) -> SimulationReport:
        engine = SimulationEngine(self.config, faults=self.faults)
        return engine.run(self.workload, self.policy_factory())


# Published immediately before forking the pool so workers inherit the
# task list; never read outside a run_cells call.
_TASKS: Sequence[CellTask] | None = None


def _run_indexed(index: int) -> SimulationReport:
    assert _TASKS is not None, "worker started outside run_cells"
    return _TASKS[index].run()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_cells(tasks: Sequence[CellTask], jobs: int = 1) -> list[SimulationReport]:
    """Simulate every task; returns reports in task order.

    With ``jobs > 1`` and ``fork`` support, tasks fan out over a process
    pool; otherwise they run serially in-process.  Either way the
    reports are bit-identical.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1 or not fork_available():
        return [task.run() for task in tasks]
    global _TASKS
    _TASKS = tasks
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
            return pool.map(_run_indexed, range(len(tasks)))
    finally:
        _TASKS = None

"""The non-NDP host baseline: 64 cores, 32 MB Jigsaw-NUCA LLC, DDR5.

Fig. 5 normalizes every NDP design to a conventional host processor whose
last-level cache is an SRAM NUCA (512 kB banks, 9-cycle bank access plus
3-cycle routing per hop, managed Jigsaw-style) in front of DDR5 main
memory.  We express the host as a :class:`SystemConfig` whose "NDP DRAM"
timing is the SRAM bank latency and whose "extended memory" is
direct-attached DDR5 (no CXL link), then run the Jigsaw policy with
on-chip (free) metadata — SRAM tags need no DRAM metadata accesses.
"""

from __future__ import annotations

from repro.baselines.jigsaw import JigsawPolicy
from repro.sim.params import (
    DDR5_4800,
    KB,
    CxlParams,
    DramTiming,
    NocParams,
    SystemConfig,
)

# SRAM LLC bank: 9-cycle access at 2 GHz; no row-buffer distinction.
SRAM_BANK = DramTiming(
    name="sram-llc",
    freq_mhz=2000.0,
    t_rcd=0,
    t_cas=9,
    t_rp=0,
    rd_wr_pj_per_bit=0.2,
    act_pre_nj=0.0,
    row_bytes=2 * KB,
    banks=1,
)

# Direct-attached DDR5: a short memory-controller latency instead of the
# 200 ns CXL link, and cheaper per-bit transfer energy.  The channel
# count is scaled in host_config to preserve the paper's cores-per-
# channel pressure (64 cores / 4 channels).
HOST_MEMORY = CxlParams(link_ns=20.0, pj_per_bit=5.0, lanes=64, channels=4)

# 3-cycle routing per hop at 2 GHz.
HOST_NOC = NocParams(
    intra_hop_ns=1.5,
    inter_hop_ns=1.5,
    intra_pj_per_bit=0.3,
    inter_pj_per_bit=0.3,
)


def host_config(ndp_config: SystemConfig) -> SystemConfig:
    """Build the host system matched to an NDP config's scale.

    The host has half the cores (64 vs. 128 at paper scale) and an LLC
    orders of magnitude smaller than the NDP DRAM cache (32 MB vs. 16 GB,
    against working sets beyond 16 GB).  Two ratios cannot both survive
    scaling; we preserve the one that sets the host's hit rate — LLC as a
    small percent of the NDP cache/footprint (1/32) — because that is
    what produces the paper's 4-7x NDP-over-host gap.
    """
    mesh_x = max(1, ndp_config.mesh_x)
    mesh_y = max(1, ndp_config.mesh_y * ndp_config.n_stacks // 2)
    n_units = max(1, mesh_x * mesh_y)
    # Paper ratio: 32 MB LLC vs 16 GB NDP cache (1/512) against >16 GB
    # footprints — the host runs essentially out of DRAM.  The per-bank
    # floor keeps the model well-formed at tiny scales.
    total_llc = max(8 * KB, ndp_config.total_cache_bytes // 512)
    bank_bytes = max(1 * KB, total_llc // n_units)
    channels = max(1, round(ndp_config.n_cores / 32))
    memory = CxlParams(
        link_ns=HOST_MEMORY.link_ns,
        pj_per_bit=HOST_MEMORY.pj_per_bit,
        lanes=HOST_MEMORY.lanes,
        channels=channels,
    )
    return SystemConfig(
        name=f"host-of-{ndp_config.name}",
        stacks_x=1,
        stacks_y=1,
        mesh_x=mesh_x,
        mesh_y=mesh_y,
        unit_cache_bytes=bank_bytes,
        memory_style="hmc",  # a flat on-chip mesh of banks
        ndp_dram=SRAM_BANK,
        ext_dram=DDR5_4800,
        noc=HOST_NOC,
        cxl=memory,
        core=ndp_config.core,
        stream=ndp_config.stream,
        epoch_accesses=ndp_config.epoch_accesses,
        metadata_cache_bytes=ndp_config.metadata_cache_bytes,
        indirect_mlp=1.0,  # no stream engine on the host
    )


class HostJigsawPolicy(JigsawPolicy):
    """Jigsaw on the host LLC: SRAM tags, so metadata is free."""

    name = "host"

    def __init__(self) -> None:
        super().__init__(metadata_in_dram=False)

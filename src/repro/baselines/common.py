"""Shared substrate for the cacheline-grained NUCA baselines.

Jigsaw, Whirlpool, Nexus and static NUCA all manage the distributed DRAM
cache at cacheline granularity.  Adapted to a DRAM cache (Section VI),
they share three mechanisms implemented here:

* **metadata path** — every cache access first consults per-unit metadata.
  A 128 kB dual-granularity metadata cache (Bi-Modal style: one entry per
  512 B block, data migrated at 64 B) filters most lookups; a metadata
  miss costs a DRAM access at the home unit on the critical path.  This
  is the cost NDPExt's coarse stream metadata eliminates.
* **partitioned mapping** — lines are classified into partitions; each
  partition owns rows on some units (possibly replicated across regions),
  and a line hashes to a unit/set within its partition's copy.
* **epoch reconfiguration with bulk invalidation** — partitions are
  resized from sampled miss curves; any resized partition's contents are
  dropped (prior work's bulk invalidation [6], [7]).

Concrete baselines subclass :class:`PartitionedNucaPolicy` and override
classification, sizing, placement, and replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sampler import SamplerParams
from repro.core.stream_cache import (
    _pair_keys,
    pack_set_id,
    unpack_set_idx,
    unpack_unit,
)
from repro.faults import EpochFaults, FaultState
from repro.sim.cachesim import _prev_in_group, direct_mapped_hits
from repro.sim.engine import DramCachePolicy, ReconfigStats, RequestOutcome
from repro.sim.params import CACHELINE_BYTES, SystemConfig
from repro.sim.topology import Topology
from repro.util.curves import LookaheadState, MissCurve
from repro.util.hashing import mix64_array, weighted_bucket_array
from repro.workloads.trace import Trace, Workload

META_BLOCK_BYTES = 512
META_ENTRY_BYTES = 4
META_HIT_NS = 1.0


@dataclass
class RegionCopy:
    """One replica of a partition: rows on a set of units."""

    units: np.ndarray
    rows: np.ndarray  # parallel to units

    @property
    def total_rows(self) -> int:
        return int(self.rows.sum())


@dataclass
class PartitionSpec:
    """Where one partition's lines may live."""

    pid: int
    copies: list[RegionCopy] = field(default_factory=list)
    read_only: bool = False

    @property
    def allocated(self) -> bool:
        return any(c.total_rows > 0 for c in self.copies)

    def signature(self) -> tuple:
        return tuple(
            (tuple(c.units.tolist()), tuple(c.rows.tolist())) for c in self.copies
        )


class MetadataCache:
    """Per-unit dual-granularity metadata cache, simulated per epoch."""

    def __init__(self, config: SystemConfig) -> None:
        self.entries = max(1, config.metadata_cache_bytes // META_ENTRY_BYTES)
        self.dram_ns = config.ndp_dram.row_miss_ns

    def lookup(self, req_unit: np.ndarray, addrs: np.ndarray) -> tuple[np.ndarray, int]:
        """Returns (per-access metadata latency, number of DRAM metadata
        accesses) for a batch of requests in trace order."""
        meta_block = np.asarray(addrs, dtype=np.int64) // META_BLOCK_BYTES
        slot = (
            np.asarray(req_unit, dtype=np.int64) * self.entries
            + (mix64_array(meta_block.astype(np.uint64), salt=3) % np.uint64(self.entries)).astype(np.int64)
        )
        hits = direct_mapped_hits(slot, meta_block)
        latency = np.where(hits, META_HIT_NS, META_HIT_NS + self.dram_ns)
        return latency, int((~hits).sum())


class PartitionedNucaPolicy(DramCachePolicy):
    """Base class for the cacheline NUCA baselines."""

    name = "nuca"

    def __init__(self, metadata_in_dram: bool = True) -> None:
        # NDP baselines pay DRAM metadata cost; the host's SRAM LLC keeps
        # tags on-chip and sets this False.
        self.metadata_in_dram = metadata_in_dram
        self._partitions: dict[int, PartitionSpec] = {}
        self._signatures: dict[int, tuple] = {}
        self._resident: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # -- subclass hooks -------------------------------------------------

    def classify(self, epoch: Trace) -> np.ndarray:
        """Partition id per request (>= 0).  Default: one big partition."""
        return np.zeros(len(epoch), dtype=np.int64)

    def reconfigure(self, epoch_idx: int) -> None:
        """Update ``self._partitions``; default installs a static equal
        interleave once (static NUCA)."""
        if self._partitions:
            return
        self._partitions = {0: self._interleaved_partition(0)}

    def observe(self, epoch_idx: int, epoch: Trace, pids: np.ndarray) -> None:
        """Profiling hook after each epoch."""

    # -- common machinery ------------------------------------------------

    def setup(self, config: SystemConfig, topology: Topology, workload: Workload) -> None:
        self.config = config
        self.topology = topology
        self.workload = workload
        self.lines_per_row = max(1, config.ndp_dram.row_bytes // CACHELINE_BYTES)
        self.metadata = MetadataCache(config)
        self.sampler_params = SamplerParams(
            sample_sets=config.stream.sampler_sets,
            capacity_points=config.stream.sampler_points,
            min_capacity=config.stream.sampler_min_bytes,
            max_capacity=max(
                config.stream.sampler_min_bytes * 2, config.total_cache_bytes
            ),
        )
        self._partitions = {}
        self._signatures = {}
        self._resident = {}

    def _interleaved_partition(self, pid: int, read_only: bool = False) -> PartitionSpec:
        units = np.arange(self.config.n_units, dtype=np.int64)
        rows = np.full(
            self.config.n_units, self.config.rows_per_unit, dtype=np.int64
        )
        return PartitionSpec(
            pid=pid, copies=[RegionCopy(units=units, rows=rows)], read_only=read_only
        )

    def begin_epoch(self, epoch_idx: int) -> ReconfigStats:
        before = dict(self._signatures)
        self.reconfigure(epoch_idx)
        stats = ReconfigStats()
        self._signatures = {
            pid: spec.signature() for pid, spec in self._partitions.items()
        }
        for pid, resident in list(self._resident.items()):
            if before.get(pid) != self._signatures.get(pid):
                # Bulk invalidation: the partition moved or resized.
                stats.invalidations += len(resident[0])
                del self._resident[pid]
        return stats

    def process(self, epoch: Trace) -> RequestOutcome:
        n = len(epoch)
        req_unit = epoch.core.astype(np.int64) % self.config.n_units
        if self.metadata_in_dram:
            metadata_ns, meta_dram = self.metadata.lookup(req_unit, epoch.addr)
        else:
            metadata_ns, meta_dram = np.full(n, META_HIT_NS), 0

        pids = self.classify(epoch)
        self._last_pids = pids
        lines = epoch.addr // CACHELINE_BYTES
        set_ids = np.full(n, -1, dtype=np.int64)
        serving_unit = np.full(n, -1, dtype=np.int64)

        for pid in np.unique(pids):
            spec = self._partitions.get(int(pid))
            if spec is None or not spec.allocated:
                continue
            mask = pids == pid
            copy_idx = self._copy_of_unit(spec, req_unit[mask])
            p_sets = np.full(int(mask.sum()), -1, dtype=np.int64)
            for ci in np.unique(copy_idx):
                copy = spec.copies[int(ci)]
                if copy.total_rows == 0:
                    continue
                csel = copy_idx == ci
                p_sets[csel] = self._map_lines(int(pid), copy, lines[mask][csel])
            idx = np.flatnonzero(mask)
            placed = p_sets >= 0
            set_ids[idx[placed]] = p_sets[placed]
            serving_unit[idx[placed]] = unpack_unit(p_sets[placed])

        cached = set_ids >= 0
        hit = np.zeros(n, dtype=bool)
        hit[cached] = direct_mapped_hits(set_ids[cached], lines[cached])
        rescued = self._rescue(pids, set_ids, lines, cached, hit)
        self._record_resident(pids, set_ids, lines, cached)

        local_row = np.where(
            cached, unpack_set_idx(set_ids) // self.lines_per_row, -1
        )
        return RequestOutcome(
            hit=hit,
            serving_unit=serving_unit,
            local_row=local_row,
            # Tags live with the data in DRAM: a miss is discovered by the
            # (meta-filtered) probe only when metadata was imprecise; with
            # the idealized dual-granularity cache the metadata identifies
            # misses, so no extra DRAM probe is charged.
            miss_probe_dram=np.zeros(n, dtype=bool),
            metadata_ns=metadata_ns,
            metadata_dram_accesses=meta_dram,
            rescued_first_touches=rescued,
        )

    def end_epoch(self, epoch_idx: int, epoch: Trace, outcome: RequestOutcome) -> None:
        self.observe(epoch_idx, epoch, self._last_pids)

    def on_faults(
        self, epoch_idx: int, events: EpochFaults, state: FaultState
    ) -> ReconfigStats:
        """Fail-stop: drop the lines lost with the hardware, nothing more.

        The partition maps are left untouched, so lines that hash to the
        lost hardware keep doing so and the engine demotes those accesses
        to extended-memory bypasses — the bypass fallback the baselines
        get instead of NDPExt's remap recovery.
        """
        stats = ReconfigStats()
        dead = np.array(sorted(events.unit_failures), dtype=np.int64)
        for pid, (sets, lines) in list(self._resident.items()):
            units = unpack_unit(sets)
            keep = np.ones(len(sets), dtype=bool)
            if len(dead):
                keep &= ~np.isin(units, dead)
            for unit, row in events.row_faults:
                keep &= ~(
                    (units == unit)
                    & (unpack_set_idx(sets) // self.lines_per_row == row)
                )
            lost = int((~keep).sum())
            if lost:
                stats.invalidations += lost
                self._resident[pid] = (sets[keep], lines[keep])
        return stats

    # -- mapping helpers --------------------------------------------------

    def _copy_of_unit(self, spec: PartitionSpec, req_unit: np.ndarray) -> np.ndarray:
        """Which replica serves each requesting unit: the nearest one."""
        if len(spec.copies) == 1:
            return np.zeros(len(req_unit), dtype=np.int64)
        centers = [
            self.topology.centroid_unit([int(u) for u in copy.units])
            for copy in spec.copies
        ]
        dist = np.stack(
            [self.topology.latency_ns[:, c] for c in centers], axis=1
        )  # (n_units, n_copies)
        nearest = np.argmin(dist, axis=1)
        return nearest[req_unit]

    def _map_lines(self, pid: int, copy: RegionCopy, lines: np.ndarray) -> np.ndarray:
        unit_choice = weighted_bucket_array(
            lines.astype(np.uint64), copy.rows, salt=pid * 13 + 7
        )
        units = copy.units[unit_choice]
        sets_per_unit = np.maximum(copy.rows[unit_choice] * self.lines_per_row, 1)
        set_idx = (
            mix64_array(lines.astype(np.uint64), salt=pid * 29 + 11)
            % sets_per_unit.astype(np.uint64)
        ).astype(np.int64)
        return pack_set_id(np.full_like(lines, pid), units, set_idx)

    def _rescue(
        self,
        pids: np.ndarray,
        set_ids: np.ndarray,
        lines: np.ndarray,
        cached: np.ndarray,
        hit: np.ndarray,
    ) -> int:
        """Warm-start: unchanged partitions keep their contents."""
        if not self._resident:
            return 0
        pair = _pair_keys(set_ids, lines)
        prev_idx, _ = _prev_in_group(pair, pair)
        first_touch = cached & (prev_idx < 0) & ~hit
        rescued = 0
        for pid in np.unique(pids[first_touch]):
            resident = self._resident.get(int(pid))
            if resident is None:
                continue
            keys = np.sort(_pair_keys(resident[0], resident[1]))
            sel = first_touch & (pids == pid)
            qk = pair[sel]
            pos = np.clip(np.searchsorted(keys, qk), 0, len(keys) - 1)
            found = keys[pos] == qk
            hit[np.flatnonzero(sel)[found]] = True
            rescued += int(found.sum())
        return rescued

    def _record_resident(
        self,
        pids: np.ndarray,
        set_ids: np.ndarray,
        lines: np.ndarray,
        cached: np.ndarray,
    ) -> None:
        if not cached.any():
            return
        c_sets = set_ids[cached]
        c_lines = lines[cached]
        c_pids = pids[cached]
        # Direct-mapped: the last line per set is resident at epoch end.
        # Stable argsort == lexsort((arange, c_sets)), but radix-sorted.
        order = np.argsort(c_sets, kind="stable")
        last = np.ones(len(order), dtype=bool)
        last[:-1] = c_sets[order][1:] != c_sets[order][:-1]
        keep = order[last]
        for pid in np.unique(c_pids[keep]):
            sel = c_pids[keep] == pid
            self._resident[int(pid)] = (c_sets[keep][sel], c_lines[keep][sel])

    # -- sizing/placement helpers shared by Jigsaw-family baselines -------

    # Same churn guard as the NDPExt runtime: only install a resized
    # partitioning when it predicts a meaningful miss reduction,
    # otherwise bulk invalidation costs outweigh the gain.
    RECONFIG_GAIN_THRESHOLD = 0.03

    def smooth_curve(self, pid: int, fresh: MissCurve) -> MissCurve:
        """EWMA against the previously stored curve (same capacities)."""
        previous = getattr(self, "_smoothed", {}).get(pid)
        if previous is not None and np.array_equal(
            previous.capacities, fresh.capacities
        ):
            fresh = MissCurve(
                fresh.capacities, 0.5 * previous.misses + 0.5 * fresh.misses
            )
        if not hasattr(self, "_smoothed"):
            self._smoothed = {}
        self._smoothed[pid] = fresh
        return fresh

    def should_install(
        self, curves: dict[int, MissCurve], new_sizes: dict[int, int]
    ) -> bool:
        """Compare predicted misses of the new sizing vs the installed one."""
        old_sizes = getattr(self, "_installed_sizes", None)
        if old_sizes is None:
            return True

        def predicted(sizes: dict[int, int]) -> float:
            return sum(
                curve.monotone().misses_at(sizes.get(pid, 0))
                for pid, curve in curves.items()
            )

        return predicted(new_sizes) < predicted(old_sizes) * (
            1.0 - self.RECONFIG_GAIN_THRESHOLD
        )

    def record_install(self, sizes: dict[int, int]) -> None:
        self._installed_sizes = dict(sizes)

    def lookahead_sizes(
        self, curves: dict[int, MissCurve], budget_bytes: int
    ) -> dict[int, int]:
        """Classic lookahead sizing: repeatedly grant the steepest slope
        until the byte budget runs out.  Returns bytes per partition."""
        state = LookaheadState({p: c.monotone() for p, c in curves.items()})
        spent = 0
        while spent < budget_bytes:
            segment = state.next_steepest_segment()
            if segment is None:
                break
            if spent + segment.size > budget_bytes:
                break
            state.commit(segment)
            spent += segment.size
        return dict(state.allocated)

    def center_of_mass_placement(
        self,
        sizes_rows: dict[int, int],
        weights: dict[int, dict[int, int]],
        importance: dict[int, int],
        replication: dict[int, int] | None = None,
    ) -> dict[int, PartitionSpec]:
        """Greedy centre-of-mass placement (Jigsaw/CDCS-style).

        Partitions are placed in importance order; each allocates its rows
        from the units nearest its accessors' weighted centroid.  With
        ``replication[pid] = R > 1`` the units are split into R contiguous
        regions and each region receives a full copy (Nexus-style global
        replication for read-only data).
        """
        n_units = self.config.n_units
        free = np.full(n_units, self.config.rows_per_unit, dtype=np.int64)
        specs: dict[int, PartitionSpec] = {}
        order = sorted(sizes_rows, key=lambda p: -importance.get(p, 0))
        # Leftover capacity (curves flat before the cache fills) is handed
        # out proportionally to access counts — partitioned caches use all
        # their space.
        leftover = int(free.sum()) - int(sum(sizes_rows.values()))
        total_importance = sum(importance.get(p, 0) for p in sizes_rows) or 1
        for pid in order:
            rows_needed = sizes_rows[pid]
            if leftover > 0:
                rows_needed += (
                    leftover * importance.get(pid, 0) // total_importance
                )
            acc = weights.get(pid, {})
            degree = (replication or {}).get(pid, 1)
            copies: list[RegionCopy] = []
            regions = self._regions(degree)
            for region in regions:
                copy = self._fill_region(
                    region, rows_needed, acc, free
                )
                if copy.total_rows > 0:
                    copies.append(copy)
            specs[pid] = PartitionSpec(pid=pid, copies=copies)
        return specs

    def _regions(self, degree: int) -> list[np.ndarray]:
        """Split units into ``degree`` contiguous regions (by unit id,
        which follows the stack layout)."""
        units = np.arange(self.config.n_units, dtype=np.int64)
        degree = max(1, min(degree, self.config.n_units))
        return [np.array(r, dtype=np.int64) for r in np.array_split(units, degree)]

    def _fill_region(
        self,
        region: np.ndarray,
        rows_needed: int,
        acc_weights: dict[int, int],
        free: np.ndarray,
    ) -> RegionCopy:
        acc_in_region = [u for u in acc_weights if u in set(region.tolist())]
        if acc_in_region:
            center = self.topology.centroid_unit(
                acc_in_region, [acc_weights[u] for u in acc_in_region]
            )
        else:
            center = int(region[len(region) // 2])
        order = [u for u in self.topology.nearest_units(center) if u in set(region.tolist())]
        units_out, rows_out = [], []
        remaining = rows_needed
        for unit in order:
            if remaining <= 0:
                break
            take = int(min(remaining, free[unit]))
            if take > 0:
                units_out.append(unit)
                rows_out.append(take)
                free[unit] -= take
                remaining -= take
        return RegionCopy(
            units=np.array(units_out, dtype=np.int64),
            rows=np.array(rows_out, dtype=np.int64),
        )

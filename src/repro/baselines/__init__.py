"""Baseline DRAM-cache policies: S-NUCA, Jigsaw, Whirlpool, Nexus, host."""

from repro.baselines.common import (
    MetadataCache,
    PartitionedNucaPolicy,
    PartitionSpec,
    RegionCopy,
)
from repro.baselines.host import HostJigsawPolicy, host_config
from repro.baselines.jigsaw import JigsawPolicy
from repro.baselines.ndpext_static import NdpExtStaticPolicy
from repro.baselines.nexus import NexusPolicy
from repro.baselines.static_nuca import StaticNucaPolicy
from repro.baselines.whirlpool import WhirlpoolPolicy

__all__ = [
    "MetadataCache",
    "PartitionedNucaPolicy",
    "PartitionSpec",
    "RegionCopy",
    "HostJigsawPolicy",
    "host_config",
    "JigsawPolicy",
    "NdpExtStaticPolicy",
    "NexusPolicy",
    "StaticNucaPolicy",
    "WhirlpoolPolicy",
]

"""Nexus [71]: Whirlpool-style partitioning + global replication degree.

Nexus adds replication for read-only data, but with a *single global
degree* applied uniformly: the unit grid is split into R regular regions
and every read-only partition keeps one copy per region.  The degree is
chosen once per reconfiguration by estimating, from the measured miss
curves, the balance between extra misses (each copy is R x smaller) and
saved interconnect hops (a replica is nearer).

The contrast with NDPExt is precisely that R is global and regions are
regular — per-stream custom groups are impossible at cacheline-metadata
cost (Section IV-B).
"""

from __future__ import annotations

from repro.baselines.whirlpool import WhirlpoolPolicy

CANDIDATE_DEGREES = (1, 2, 4, 8)


class NexusPolicy(WhirlpoolPolicy):
    """Whirlpool + global-degree replication for read-only partitions."""

    name = "nexus"

    def __init__(self, metadata_in_dram: bool = True, degree: int | None = None) -> None:
        super().__init__(metadata_in_dram=metadata_in_dram)
        self._fixed_degree = degree
        self.chosen_degree = 1

    def _avg_distance_ns(self, degree: int) -> float:
        """Average one-way latency from a unit to its region's centre."""
        regions = self._regions(degree)
        total = 0.0
        for region in regions:
            center = self.topology.centroid_unit([int(u) for u in region])
            total += float(
                sum(self.topology.latency_ns[int(u), center] for u in region)
            )
        return total / self.config.n_units

    def _miss_penalty_ns(self) -> float:
        cfg = self.config
        return cfg.cxl.link_ns + cfg.ext_dram.row_miss_ns

    def _pick_degree(self) -> int:
        if self._fixed_degree is not None:
            return self._fixed_degree
        read_only = [
            pid for pid, ro in self._read_only.items() if ro and pid in self._curves
        ]
        if not read_only:
            return 1
        sizes = self.lookahead_sizes(self._curves, self.config.total_cache_bytes)
        penalty = self._miss_penalty_ns()

        def predicted_cost(degree: int) -> float:
            hop_ns = self._avg_distance_ns(degree)
            cost = 0.0
            for pid, curve in self._curves.items():
                accesses = self._importance.get(pid, 0)
                size = sizes.get(pid, 0)
                if pid in read_only:
                    misses = curve.monotone().misses_at(max(1, size // degree))
                else:
                    misses = curve.monotone().misses_at(max(1, size))
                hits = max(0.0, accesses - misses)
                cost += misses * penalty + hits * 2.0 * hop_ns
            return cost

        base_cost = predicted_cost(1)
        best_degree, best_cost = 1, base_cost
        for degree in CANDIDATE_DEGREES[1:]:
            if degree > self.config.n_units:
                continue
            cost = predicted_cost(degree)
            if cost < best_cost:
                best_cost, best_degree = cost, degree
        # Replication shrinks every copy; commit only on a clear predicted
        # win, since the model under-counts conflict misses near exact fit.
        if best_degree > 1 and best_cost > 0.85 * base_cost:
            return 1
        return best_degree

    def replication_degrees(self) -> dict[int, int]:
        self.chosen_degree = self._pick_degree()
        if self.chosen_degree == 1:
            return {}
        return {
            pid: self.chosen_degree
            for pid, ro in self._read_only.items()
            if ro and pid in self._curves
        }

"""Jigsaw [6]: utility-partitioned, thread-classified shared cache.

Jigsaw partitions the shared cache per *thread*: each line belongs to the
thread that dominates its accesses (lines with no dominant accessor go to
a shared partition).  Partition sizes come from lookahead over sampled
miss curves; placement moves each partition's banks toward the
centre-of-mass of its accessors.  Reconfiguration uses bulk invalidation.

This is the sizing-then-placement, no-replication design whose two
weaknesses (centre-units contention, no per-data replication) motivate
NDPExt's joint algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import PartitionedNucaPolicy
from repro.core.sampler import sample_curve
from repro.sim.params import CACHELINE_BYTES
from repro.util.curves import MissCurve
from repro.workloads.trace import Trace

SHARED_PID = 1 << 11  # partition for lines with no dominant accessor
DOMINANCE = 0.5  # a core owns a line if it issues > 50% of its accesses


class JigsawPolicy(PartitionedNucaPolicy):
    """Thread-partitioned D-NUCA with lookahead sizing and
    centre-of-mass placement."""

    name = "jigsaw"

    def __init__(self, metadata_in_dram: bool = True) -> None:
        super().__init__(metadata_in_dram=metadata_in_dram)
        self._line_owner: tuple[np.ndarray, np.ndarray] | None = None
        self._pending_owner: tuple[np.ndarray, np.ndarray] | None = None
        self._curves: dict[int, MissCurve] = {}
        self._weights: dict[int, dict[int, int]] = {}
        self._importance: dict[int, int] = {}

    # -- classification ---------------------------------------------------

    def classify(self, epoch: Trace) -> np.ndarray:
        lines = epoch.addr // CACHELINE_BYTES
        pids = np.full(len(epoch), SHARED_PID, dtype=np.int64)
        if self._line_owner is not None:
            known_lines, owners = self._line_owner
            pos = np.searchsorted(known_lines, lines)
            pos = np.clip(pos, 0, len(known_lines) - 1)
            found = known_lines[pos] == lines
            pids[found] = owners[pos[found]]
        return pids

    # -- profiling ----------------------------------------------------------

    def observe(self, epoch_idx: int, epoch: Trace, pids: np.ndarray) -> None:
        lines = epoch.addr // CACHELINE_BYTES
        cores = epoch.core.astype(np.int64)
        n_cores = int(cores.max()) + 1 if len(cores) else 1
        key = lines * n_cores + cores
        uniq, counts = np.unique(key, return_counts=True)
        u_lines = uniq // n_cores
        u_cores = uniq % n_cores

        # Dominant accessor per line: the (line, core) pair with the
        # largest count, owning the line only above the dominance cut.
        order = np.lexsort((counts, u_lines))
        s_lines = u_lines[order]
        last_of_line = np.ones(len(order), dtype=bool)
        last_of_line[:-1] = s_lines[1:] != s_lines[:-1]
        best_idx = order[last_of_line]
        # Total accesses per line via add-reduce on the unique pairs.
        line_ids, inverse = np.unique(u_lines, return_inverse=True)
        per_line_total = np.zeros(len(line_ids), dtype=np.int64)
        np.add.at(per_line_total, inverse, counts)
        best_lines = u_lines[best_idx]
        best_cores = u_cores[best_idx]
        best_counts = counts[best_idx]
        best_pos = np.searchsorted(line_ids, best_lines)
        dominant = best_counts > DOMINANCE * per_line_total[best_pos]
        owner = np.where(
            dominant,
            best_cores % self.config.n_units,
            SHARED_PID,
        )
        # Adopted at the next reconfiguration, together with the sizing —
        # reclassifying lines without resizing would move data for nothing.
        self._pending_owner = (best_lines, owner)

        # Miss curves per partition, classified by the fresh ownership.
        fresh_pids = np.full(len(epoch), SHARED_PID, dtype=np.int64)
        pos = np.clip(np.searchsorted(best_lines, lines), 0, len(best_lines) - 1)
        found = best_lines[pos] == lines
        fresh_pids[found] = owner[pos[found]]

        self._curves = {}
        self._weights = {}
        self._importance = {}
        req_unit = cores % self.config.n_units
        for pid in np.unique(fresh_pids):
            sel = fresh_pids == pid
            self._curves[int(pid)] = self.smooth_curve(
                int(pid),
                sample_curve(lines[sel], CACHELINE_BYTES, self.sampler_params),
            )
            units, ucounts = np.unique(req_unit[sel], return_counts=True)
            self._weights[int(pid)] = {
                int(u): int(c) for u, c in zip(units, ucounts)
            }
            self._importance[int(pid)] = int(sel.sum())

    # -- reconfiguration ----------------------------------------------------

    def reconfigure(self, epoch_idx: int) -> None:
        if not self._curves:
            if not self._partitions:
                self._partitions = {SHARED_PID: self._interleaved_partition(SHARED_PID)}
            return
        sizes_bytes = self.lookahead_sizes(
            self._curves, self.config.total_cache_bytes
        )
        if not self.should_install(self._curves, sizes_bytes):
            return
        row_bytes = self.config.ndp_dram.row_bytes
        sizes_rows = {
            pid: max(1, size // row_bytes) for pid, size in sizes_bytes.items()
        }
        if self._pending_owner is not None:
            self._line_owner = self._pending_owner
        self._partitions = self.center_of_mass_placement(
            sizes_rows, self._weights, self._importance
        )
        self.record_install(sizes_bytes)

"""Whirlpool [56]: static data classification + dynamic partitioning.

Whirlpool distinguishes *data structures* (not threads) during
partitioning: each annotated structure — our streams, classified manually
exactly as the paper adapts it ("we annotate streams as in NDPExt and
manually classify these streams") — becomes a partition.  Sizing uses the
same lookahead machinery as Jigsaw, placement is centre-of-mass of each
structure's accessors, and there is no replication.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import PartitionedNucaPolicy
from repro.core.sampler import sample_curve
from repro.sim.params import CACHELINE_BYTES
from repro.sim.topology import Topology
from repro.sim.params import SystemConfig
from repro.util.curves import MissCurve
from repro.workloads.trace import Trace, Workload

UNCLASSIFIED_PID = 1 << 11  # accesses outside every annotated structure


class WhirlpoolPolicy(PartitionedNucaPolicy):
    """Data-structure-partitioned D-NUCA (one partition per stream)."""

    name = "whirlpool"

    def __init__(self, metadata_in_dram: bool = True) -> None:
        super().__init__(metadata_in_dram=metadata_in_dram)
        self._curves: dict[int, MissCurve] = {}
        self._weights: dict[int, dict[int, int]] = {}
        self._importance: dict[int, int] = {}
        self._read_only: dict[int, bool] = {}

    def setup(self, config: SystemConfig, topology: Topology, workload: Workload) -> None:
        super().setup(config, topology, workload)
        self._read_only = {s.sid: s.read_only for s in workload.streams}

    def classify(self, epoch: Trace) -> np.ndarray:
        pids = epoch.sid.astype(np.int64)
        return np.where(pids >= 0, pids, UNCLASSIFIED_PID)

    def observe(self, epoch_idx: int, epoch: Trace, pids: np.ndarray) -> None:
        lines = epoch.addr // CACHELINE_BYTES
        req_unit = epoch.core.astype(np.int64) % self.config.n_units
        self._curves = {}
        self._weights = {}
        self._importance = {}
        written = set(np.unique(pids[epoch.write]).tolist())
        for pid in np.unique(pids):
            sel = pids == pid
            self._curves[int(pid)] = self.smooth_curve(
                int(pid),
                sample_curve(lines[sel], CACHELINE_BYTES, self.sampler_params),
            )
            units, counts = np.unique(req_unit[sel], return_counts=True)
            self._weights[int(pid)] = {int(u): int(c) for u, c in zip(units, counts)}
            self._importance[int(pid)] = int(sel.sum())
            if pid in written:
                self._read_only[int(pid)] = False

    def replication_degrees(self) -> dict[int, int]:
        """No replication in Whirlpool; Nexus overrides this."""
        return {}

    def reconfigure(self, epoch_idx: int) -> None:
        if not self._curves:
            if not self._partitions:
                self._partitions = {
                    UNCLASSIFIED_PID: self._interleaved_partition(UNCLASSIFIED_PID)
                }
            return
        sizes_bytes = self.lookahead_sizes(self._curves, self.config.total_cache_bytes)
        if not self.should_install(self._curves, sizes_bytes):
            return
        row_bytes = self.config.ndp_dram.row_bytes
        sizes_rows = {
            pid: max(1, size // row_bytes) for pid, size in sizes_bytes.items()
        }
        degrees = self.replication_degrees()
        # Replication trades capacity: a degree-R partition splits its
        # budget into R copies.
        for pid, degree in degrees.items():
            if pid in sizes_rows and degree > 1:
                sizes_rows[pid] = max(1, sizes_rows[pid] // degree)
        self._partitions = self.center_of_mass_placement(
            sizes_rows, self._weights, self._importance, replication=degrees
        )
        for pid, spec in self._partitions.items():
            spec.read_only = self._read_only.get(pid, False)
        self.record_install(sizes_bytes)

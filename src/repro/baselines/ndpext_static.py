"""NDPExt-static: the stream cache without runtime reconfiguration.

The ablation baseline of Fig. 5/9(e): the hardware stream cache is intact
(coarse metadata, SLB, ATA, in-DRAM indirect tags) but the cache space is
split equally among the streams, with a single global replication group
each, and never changes.  The gap to full NDPExt isolates the value of
the software configuration algorithm.
"""

from __future__ import annotations

from repro.core.runtime import NdpExtPolicy


class NdpExtStaticPolicy(NdpExtPolicy):
    """Equal per-stream allocation, no reconfiguration."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("name", "ndpext-static")
        super().__init__(mode="static", **kwargs)

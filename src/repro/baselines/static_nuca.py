"""Static NUCA: cacheline interleaving across all units (S-NUCA).

The simple policy used in the paper's motivating Fig. 2: every line hashes
uniformly across the whole distributed cache, with no partitioning,
placement, or replication.  Inherits the metadata path and mapping from
:class:`PartitionedNucaPolicy` with the default single interleaved
partition.
"""

from __future__ import annotations

from repro.baselines.common import PartitionedNucaPolicy


class StaticNucaPolicy(PartitionedNucaPolicy):
    """One global partition, uniformly interleaved, never reconfigured."""

    name = "static-nuca"

"""NDPExt reproduction: stream-based data placement for near-data
processing with extended memory (MICRO 2024).

Quickstart::

    from repro import sim, workloads
    from repro.core import NdpExtPolicy
    from repro.baselines import NexusPolicy

    config = sim.small()
    engine = sim.SimulationEngine(config)
    workload = workloads.build("pr")
    report = engine.run(workload, NdpExtPolicy())
    baseline = engine.run(workload, NexusPolicy())
    print(report.speedup_over(baseline))
"""

from repro import baselines, core, obs, sim, util, workloads

__version__ = "1.0.0"

__all__ = ["baselines", "core", "obs", "sim", "util", "workloads", "__version__"]

"""Command-line interface: run simulations, regenerate paper figures,
and capture/inspect observability traces.

Usage::

    python -m repro run --workload pr --policy ndpext [--preset small]
    python -m repro run --workload pr --policy ndpext --trace-out t.jsonl
    python -m repro compare --workload pr [--trace-out prefix] [--jobs 4]
    python -m repro figure fig5 [--preset small] [--jobs 4]
    python -m repro suite [--preset small] [--jobs 4]
    python -m repro report [--output results.md]
    python -m repro trace --workload pr --policy ndpext --out trace.jsonl
    python -m repro stats trace.jsonl [other.jsonl]
    python -m repro dash trace.jsonl --out dash.html [--prom m.prom]
    python -m repro bench [--quick] [--out BENCH.json] [--check PREV.json]
    python -m repro profile --workload pr --policy ndpext [--perf-out prof.json]
    python -m repro profile --suite --jobs 4 [--report-out bottleneck.json]
    python -m repro serve --workload pr [--storm] [--journal serve.jsonl]

``--jobs N`` (or ``--jobs auto``, which sizes the pool from the CPU
count with a cap) fans uncached simulation cells across N *supervised*
worker processes: crashed or hung workers are detected, the affected
cell is retried with exponential backoff, and repeat offenders are
quarantined into a poison list instead of aborting the sweep — results
stay bit-identical to serial runs.  ``--timeout`` caps per-cell wall
clock, ``--max-retries`` bounds the attempt budget, and ``--resume
MANIFEST`` journals completed cells so an interrupted sweep picks up
exactly where it stopped.  Completed cells persist in a
content-addressed disk cache (``REPRO_CACHE_DIR``, disable with
``REPRO_DISK_CACHE=0``), so repeated invocations skip simulation
entirely.  ``bench`` measures engine throughput, parallel fan-out, and
cache behaviour, writing a ``BENCH_<date>.json``.

``figure`` accepts: fig2, fig4b, fig5, fig6, fig7, fig8a, fig8b,
fig9a..fig9f, sec5d, faults.

``trace`` runs one simulation with a live recorder and writes a
schema-versioned JSONL event trace (epoch timeline, reconfiguration
decisions with predicted-vs-realized per-stream hit rates, sampled miss
curves, fault events, and a wall-clock self-profile of the simulator).
``stats`` summarizes one such trace, or diffs two.  ``--trace-out`` on
``run`` writes the same trace alongside the result table; on
``compare`` it is a prefix and one ``<prefix>.<policy>.jsonl`` file is
written per policy.

``dash`` renders a trace (or a ``--report-out`` JSON) into one
self-contained HTML page: per-tier latency CDFs with exact percentiles,
the per-unit served-request heatmap, the stack-to-stack link matrix,
and the epoch timeline.  ``--prom``/``--json`` additionally export the
same content in Prometheus text format / as a metrics JSON payload.
``bench --check PREV.json`` compares the fresh bench against a previous
one and warns on regressions beyond ``--check-threshold`` (default
20%); ``--check-strict`` exits non-zero instead of warning.

``profile`` answers *where the simulator's own wall clock goes*: it
runs one cell (or, with ``--suite``, a small grid fanned through the
worker pool) against a temporary cache directory so nothing is served
warm, then writes a Chrome/Perfetto trace-event JSON (``--perf-out``,
load it at https://ui.perfetto.dev) and prints a bottleneck report —
engine phases ranked by exclusive time, cache I/O spans, the pool
critical path, and per-worker utilization.  Do not confuse the two
trace flags: ``--trace-out`` (on ``run``/``compare``/``trace``) is the
*semantic* JSONL event trace of the simulated system, consumed by
``stats`` and ``dash``; ``--perf-out`` is a *performance* trace of the
simulator process itself, consumed by Perfetto.

``serve`` keeps one engine + policy session resident and replays a
multi-tenant request-batch scenario through it: bounded per-tenant
queues with admission control, priority-ordered scheduling with load
shedding and per-batch deadlines, and a health monitor that turns fault
events into forced re-placements (and pauses reconfiguration while a
unit is flapping).  ``--journal`` makes the run resumable after a
drain; ``--storm`` injects a seeded fault storm.  ``--slo`` declares
per-tenant objectives (p99 bound, availability, shed-rate ceiling)
evaluated live with Google-SRE multi-window burn-rate alerting, and
``--admission slo`` switches to the error-budget-aware admission
controller.  ``--listen HOST:PORT`` exposes the live telemetry plane
while serving — GET ``/metrics`` (Prometheus text), ``/healthz``,
``/slo``, ``/report``, and POST ``/ingest`` to drive the loop from
outside; ``--pace``/``--linger`` slow the replay and keep the endpoint
up so it can be scraped mid-run and after.  See DESIGN.md § "Serving
mode" and § "SLO & live telemetry".
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import faults, fig2, fig4b, fig5, fig6, fig7, fig8, fig9, sec5d
from repro.experiments.runner import POLICIES, PRESETS, Cell, ExperimentContext
from repro.obs import Recorder, diff_rows, read_trace, summarize, summary_rows
from repro.sim.kernels import BACKENDS
from repro.sim.metrics import SimulationReport
from repro.util import render_table
from repro.workloads import SUITE

FIGURES = {
    "fig2": lambda ctx: fig2.run(ctx),
    "fig4b": lambda ctx: fig4b.run(),
    "fig5": lambda ctx: fig5.run(ctx),
    "fig6": lambda ctx: fig6.run(ctx),
    "fig7": lambda ctx: fig7.run(ctx),
    "fig8a": lambda ctx: fig8.run_scaling(ctx),
    "fig8b": lambda ctx: fig8.run_cxl(ctx),
    "fig9a": lambda ctx: fig9.run_associativity(ctx),
    "fig9b": lambda ctx: fig9.run_block_size(ctx),
    "fig9c": lambda ctx: fig9.run_affine_space(ctx),
    "fig9d": lambda ctx: fig9.run_sampler_sets(ctx),
    "fig9e": lambda ctx: fig9.run_reconfig_method(ctx),
    "fig9f": lambda ctx: fig9.run_reconfig_interval(ctx),
    "sec5d": lambda ctx: sec5d.run(ctx),
    "faults": lambda ctx: faults.run(ctx),
}


def _jobs_arg(value: str) -> int:
    """``--jobs N`` or ``--jobs auto`` (resolved here so every consumer
    downstream still sees a plain int)."""
    if value.strip().lower() == "auto":
        from repro.exec.parallel import auto_jobs

        return auto_jobs()
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects an integer or 'auto', got {value!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NDPExt reproduction toolkit"
    )
    parser.add_argument(
        "--preset",
        default="small",
        choices=sorted(PRESETS),
        help="system preset (default: small)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N|auto",
        help="fan uncached simulation cells across N supervised worker "
        "processes (default: 1 = serial; 'auto' sizes the pool from the "
        "machine's CPU count, capped; results are bit-identical "
        "either way, including across worker crashes and retries)",
    )
    parser.add_argument(
        "--resume",
        metavar="MANIFEST",
        default=None,
        help="journal completed cells to this checkpoint manifest and "
        "skip cells it already records — an interrupted sweep rerun "
        "with the same manifest recomputes nothing it finished",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock limit; a hung worker is killed and the "
        "cell retried (default: derived from the cell's size)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per cell after the first attempt before it is "
        "quarantined into the poison list (default: 2)",
    )
    parser.add_argument(
        "--backend",
        default="numpy",
        choices=sorted(BACKENDS),
        help="engine kernel backend (default: numpy). 'python' is the "
        "pure-python reference, 'numba' JIT-compiles the keyed scans "
        "and falls back to numpy with a warning when numba is not "
        "installed; all backends produce bit-identical reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload under one policy")
    run_p.add_argument("--workload", required=True, choices=sorted(SUITE))
    run_p.add_argument("--policy", required=True, choices=sorted(POLICIES))
    run_p.add_argument(
        "--trace-out",
        default=None,
        help="also write a JSONL observability trace to this path",
    )
    run_p.add_argument(
        "--report-out",
        default=None,
        help="also write the full report (histograms, spatial map) as JSON",
    )

    cmp_p = sub.add_parser("compare", help="all policies on one workload")
    cmp_p.add_argument("--workload", required=True, choices=sorted(SUITE))
    cmp_p.add_argument(
        "--trace-out",
        default=None,
        help="write one <prefix>.<policy>.jsonl trace per policy",
    )

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))

    sub.add_parser("suite", help="Fig. 5 table over the whole suite")

    rep_p = sub.add_parser(
        "report", help="regenerate every figure into a markdown report"
    )
    rep_p.add_argument(
        "--output", default="results.md", help="report path (default: results.md)"
    )

    trace_p = sub.add_parser(
        "trace", help="run with full observability and write a JSONL trace"
    )
    trace_p.add_argument("--workload", required=True, choices=sorted(SUITE))
    trace_p.add_argument("--policy", required=True, choices=sorted(POLICIES))
    trace_p.add_argument(
        "--out", default="trace.jsonl", help="trace path (default: trace.jsonl)"
    )
    trace_p.add_argument(
        "--csv", default=None, help="also export the epoch timeline as CSV"
    )

    bench_p = sub.add_parser(
        "bench", help="benchmark engine throughput, parallel fan-out, caching"
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="tiny preset / reduced workload set (CI smoke run)",
    )
    bench_p.add_argument(
        "--out",
        default=None,
        help="result JSON path (default: BENCH_<date>.json)",
    )
    bench_p.add_argument(
        "--check",
        default=None,
        metavar="PREV.json",
        help="compare against a previous bench file and flag regressions",
    )
    bench_p.add_argument(
        "--check-threshold",
        type=float,
        default=None,
        help="relative slowdown that counts as a regression (default: 0.20)",
    )
    bench_p.add_argument(
        "--check-strict",
        action="store_true",
        help="exit non-zero on regressions instead of warning",
    )

    prof_p = sub.add_parser(
        "profile",
        help="profile a cold run: Perfetto perf trace + bottleneck report",
    )
    prof_p.add_argument("--workload", default=None, choices=sorted(SUITE))
    prof_p.add_argument("--policy", default=None, choices=sorted(POLICIES))
    prof_p.add_argument(
        "--suite",
        action="store_true",
        help="profile the quick suite grid (pr/hotspot x ndpext/nexus) "
        "through the worker pool instead of a single cell",
    )
    prof_p.add_argument(
        "--perf-out",
        default="prof.json",
        help="Chrome/Perfetto trace-event JSON path (default: prof.json); "
        "this is a performance trace of the simulator itself — load it at "
        "ui.perfetto.dev — not the semantic JSONL trace of --trace-out",
    )
    prof_p.add_argument(
        "--report-out",
        default=None,
        help="also write the bottleneck report as JSON",
    )

    dash_p = sub.add_parser(
        "dash", help="render a trace or report JSON as a standalone HTML page"
    )
    dash_p.add_argument(
        "input", help="JSONL trace (run/trace --trace-out) or report JSON"
    )
    dash_p.add_argument(
        "--out", default="dash.html", help="HTML path (default: dash.html)"
    )
    dash_p.add_argument(
        "--prom", default=None, help="also export Prometheus text format here"
    )
    dash_p.add_argument(
        "--json", default=None, help="also export the metrics JSON payload here"
    )

    stats_p = sub.add_parser(
        "stats", help="summarize one JSONL trace, or diff two"
    )
    stats_p.add_argument(
        "trace", nargs="+", help="one trace to summarize, two to diff"
    )
    stats_p.add_argument(
        "--csv", default=None, help="export the first trace's timeline as CSV"
    )

    serve_p = sub.add_parser(
        "serve",
        help="multi-tenant serving loop: replay a tenant-mix scenario",
    )
    serve_p.add_argument(
        "--workload", default="pr", choices=sorted(SUITE)
    )
    serve_p.add_argument(
        "--policy", default="ndpext", choices=sorted(POLICIES)
    )
    serve_p.add_argument(
        "--name", default="serve", help="scenario name (default: serve)"
    )
    serve_p.add_argument(
        "--tenant",
        action="append",
        default=None,
        metavar="NAME[:PRIO[:QUOTA[:DEADLINE_NS]]]",
        help="add a tenant (repeatable); omitted fields default to "
        "priority 0, the loop's default quota, and no deadline. "
        "Default roster: interactive:10:8 + analytics:0:4",
    )
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument(
        "--batch-accesses",
        type=int,
        default=None,
        help="accesses per batch (default: the preset's epoch size)",
    )
    serve_p.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf exponent for the tenant traffic skew (default: 1.1)",
    )
    serve_p.add_argument(
        "--phase-shift-at",
        type=float,
        default=None,
        metavar="FRACTION",
        help="invert the hot/cold tenant ranking after this fraction of "
        "batches (traffic drift; default: off)",
    )
    serve_p.add_argument("--max-batches", type=int, default=None)
    serve_p.add_argument(
        "--wave-size",
        type=int,
        default=4,
        help="batches submitted between serving bursts (default: 4)",
    )
    serve_p.add_argument(
        "--steps-per-wave",
        type=int,
        default=None,
        help="serving budget per wave; small values build backlog and "
        "exercise shedding/timeouts (default: drain fully each wave)",
    )
    serve_p.add_argument(
        "--drain-after",
        type=int,
        default=None,
        metavar="BATCHES",
        help="stop submitting after this many batches and drain (the "
        "interrupted-run half of a drain/resume pair)",
    )
    serve_p.add_argument(
        "--storm",
        action="store_true",
        help="inject a seeded fault storm (unit fail-stop, row faults, "
        "CRC burst, lane downtrain) through the health monitor",
    )
    serve_p.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal admitted batches here; rerunning with the same "
        "journal skips everything already served (drain/resume)",
    )
    serve_p.add_argument(
        "--report-out", default=None, help="write the ServeReport as JSON"
    )
    serve_p.add_argument(
        "--trace-out",
        default=None,
        help="also write the JSONL observability trace (serve_* events)",
    )
    serve_p.add_argument(
        "--prom",
        default=None,
        help="also export serving metrics in Prometheus text format",
    )
    serve_p.add_argument(
        "--admission",
        default="quota",
        choices=("quota", "slo"),
        help="admission controller: 'quota' is the fixed per-tenant "
        "quota (default, bit-identical to previous releases); 'slo' "
        "flexes quotas and shed order by each tenant's error-budget "
        "state (tenants without --slo objectives get defaults)",
    )
    serve_p.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="NAME:P99_NS[:AVAIL[:SHED_RATE]]",
        help="declare one tenant's SLO (repeatable); empty fields are "
        "skipped, e.g. 'analytics:2000000' or 'batch::0.99:0.05'. "
        "Evaluated live with burn-rate alerting whenever present",
    )
    serve_p.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="expose the live telemetry plane while serving: GET "
        "/metrics (Prometheus), /healthz, /slo, /report; POST /ingest "
        "to drive the loop externally. ':9090' binds loopback",
    )
    serve_p.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock sleep between submission waves so a live "
        "endpoint can be scraped mid-run (simulated results are "
        "unaffected; default: 0)",
    )
    serve_p.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the --listen endpoint up this long after the run "
        "finishes, serving the final report (default: 0)",
    )
    return parser


def _new_recorder(context: ExperimentContext, workload: str, policy: str) -> Recorder:
    return Recorder(workload=workload, policy=policy, preset=context.preset)


def _print_run_table(
    context: ExperimentContext, args, report: SimulationReport, policy: str
) -> None:
    print(
        render_table(
            ["metric", "value"],
            [
                ["runtime cycles", f"{report.runtime_cycles:.0f}"],
                ["cache hit rate", f"{report.hits.cache_hit_rate:.3f}"],
                ["avg access latency ns", f"{report.avg_access_latency_ns:.1f}"],
                ["avg interconnect ns", f"{report.avg_interconnect_ns:.1f}"],
                ["energy mJ", f"{report.energy.total_nj / 1e6:.3f}"],
            ],
            title=f"{args.workload} under {policy} ({context.preset})",
        )
    )


def cmd_run(context: ExperimentContext, args) -> None:
    # --report-out needs a live recorder too: histograms and the spatial
    # map only exist on recorded runs (NullRecorder keeps the hot path
    # bit-identical to an uninstrumented build).
    recorder = (
        _new_recorder(context, args.workload, args.policy)
        if (args.trace_out or args.report_out)
        else None
    )
    report = context.run(args.workload, args.policy, recorder=recorder)
    _print_run_table(context, args, report, args.policy)
    if recorder is not None and args.trace_out:
        lines = recorder.write_jsonl(args.trace_out)
        print(f"[trace] wrote {args.trace_out} ({lines} lines)")
    if args.report_out:
        from repro.obs.export import write_json

        write_json(args.report_out, report.to_json(include_obs=True))
        print(f"[report] wrote {args.report_out}")


def cmd_compare(context: ExperimentContext, args) -> None:
    """Every registered policy on one workload, normalized to the host.

    The host baseline runs first so the speedup column means the same
    thing as the paper's figures (runtime(host) / runtime(policy)),
    independent of registration order.
    """
    if not args.trace_out:
        # Batch the whole column so uncached cells share the fan-out
        # (recorded runs bypass the caches, so prefetching would only
        # duplicate work when traces were requested).
        context.run_many(
            [context.host_cell(args.workload)]
            + [Cell(args.workload, name) for name in sorted(POLICIES)]
        )
    host = context.run_host(args.workload)
    rows = [
        [
            "host",
            f"{host.runtime_cycles:.0f}",
            "1.00",
            f"{host.hits.cache_hit_rate:.3f}",
        ]
    ]
    for name in sorted(POLICIES):
        recorder = (
            _new_recorder(context, args.workload, name) if args.trace_out else None
        )
        report = context.run(args.workload, name, recorder=recorder)
        if recorder is not None:
            path = f"{args.trace_out}.{name}.jsonl"
            recorder.write_jsonl(path)
            print(f"[trace] wrote {path}")
        rows.append(
            [
                name,
                f"{report.runtime_cycles:.0f}",
                f"{host.runtime_cycles / report.runtime_cycles:.2f}",
                f"{report.hits.cache_hit_rate:.3f}",
            ]
        )
    print(
        render_table(
            ["policy", "cycles", "speedup vs host", "hit rate"],
            rows,
            title=f"{args.workload} across policies ({context.preset})",
        )
    )


def cmd_report(context: ExperimentContext, args) -> None:
    """Run every figure, capturing its printed table into one document."""
    import contextlib
    import io

    sections = []
    for name in sorted(FIGURES):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            FIGURES[name](context)
        sections.append(f"## {name}\n\n```\n{buffer.getvalue().strip()}\n```\n")
        print(f"[report] {name} done")
    body = (
        f"# NDPExt reproduction results ({context.preset} preset)\n\n"
        "Regenerated by `python -m repro report`. See EXPERIMENTS.md for\n"
        "the paper-vs-measured discussion of each figure.\n\n"
        + "\n".join(sections)
    )
    with open(args.output, "w") as f:
        f.write(body)
    print(f"[report] wrote {args.output}")


def cmd_trace(context: ExperimentContext, args) -> None:
    recorder = _new_recorder(context, args.workload, args.policy)
    report = context.run(args.workload, args.policy, recorder=recorder)
    lines = recorder.write_jsonl(args.out)
    if args.csv and report.timeline is not None:
        report.timeline.to_csv(args.csv)
        print(f"[trace] wrote {args.csv}")
    timeline = report.timeline
    rows = [
        ["epochs", str(len(timeline) if timeline else 0)],
        ["events", str(len(recorder.events))],
        ["trace lines", str(lines)],
        ["runtime cycles", f"{report.runtime_cycles:.0f}"],
        ["cache hit rate", f"{report.hits.cache_hit_rate:.3f}"],
        ["reconfig events", str(len(recorder.events_of('reconfig')))],
    ]
    print(
        render_table(
            ["metric", "value"],
            rows,
            title=f"trace of {args.workload} under {args.policy} -> {args.out}",
        )
    )
    profile = recorder.profiler.summary()[:8]
    if profile:
        print(
            render_table(
                ["span", "calls", "total s", "mean us"],
                [
                    [
                        row["label"],
                        str(row["calls"]),
                        f"{row['total_s']:.3f}",
                        f"{row['mean_us']:.1f}",
                    ]
                    for row in profile
                ],
                title="simulator self-profile (slowest spans)",
            )
        )


def cmd_profile(args) -> None:
    """Attribute a cold run's wall clock and export a Perfetto trace.

    The run happens inside a throwaway ``REPRO_CACHE_DIR`` so workload
    generation and simulation actually execute — profiled against a warm
    cache, the whole run would collapse into one ``cache.report_load``
    span and the report would say nothing.
    """
    from repro.exec.cache import throwaway_cache_dir
    from repro.obs.perfreport import (
        bottleneck_report,
        render_bottleneck,
        write_chrome_trace,
    )
    from repro.obs.tracing import PerfTracer, activate

    if not args.suite and not (args.workload and args.policy):
        raise SystemExit(
            "profile: pass --workload and --policy, or --suite for the grid"
        )
    tracer = PerfTracer(process_label="main")
    accesses = 0
    with throwaway_cache_dir(prefix="repro-profile-"):
        context = ExperimentContext(
            preset=args.preset,
            jobs=args.jobs,
            timeout_s=args.timeout,
            max_retries=args.max_retries,
            backend=args.backend,
        )
        with activate(tracer):
            if args.suite:
                cells = [
                    Cell(wname, pname)
                    for wname in ("pr", "hotspot")
                    for pname in ("ndpext", "nexus")
                ]
                reports = context.run_many(cells)
                accesses = sum(
                    r.hits.total_requests for r in reports if r is not None
                )
            else:
                report = context.run(args.workload, args.policy)
                accesses = report.hits.total_requests
    events = write_chrome_trace(
        tracer,
        args.perf_out,
        meta={
            "preset": args.preset,
            "jobs": args.jobs,
            "suite": bool(args.suite),
            "workload": args.workload,
            "policy": args.policy,
        },
    )
    print(
        f"[profile] wrote {args.perf_out} ({events} events) — "
        "open it at https://ui.perfetto.dev"
    )
    prof = bottleneck_report(tracer, accesses=accesses or None)
    print(render_bottleneck(prof))
    if args.report_out:
        from repro.obs.export import write_json

        write_json(args.report_out, prof)
        print(f"[profile] wrote {args.report_out}")


def _parse_tenant(spec: str):
    """``name[:priority[:quota[:deadline_ns]]]`` with empty fields allowed
    (``batch::4`` = default priority, quota 4)."""
    from repro.serve import TenantSpec

    parts = spec.split(":")
    if not parts[0]:
        raise SystemExit(f"serve: tenant spec {spec!r} needs a name")
    if len(parts) > 4:
        raise SystemExit(
            f"serve: tenant spec {spec!r} has too many fields "
            "(name[:priority[:quota[:deadline_ns]]])"
        )
    try:
        priority = int(parts[1]) if len(parts) > 1 and parts[1] else 0
        quota = int(parts[2]) if len(parts) > 2 and parts[2] else None
        deadline = int(parts[3]) if len(parts) > 3 and parts[3] else None
    except ValueError:
        raise SystemExit(
            f"serve: non-integer field in tenant spec {spec!r}"
        ) from None
    return TenantSpec(
        parts[0], priority=priority, max_queued=quota, deadline_ns=deadline
    )


def _parse_slo(spec: str):
    """``name:p99_ns[:availability[:max_shed_rate]]`` with empty fields
    allowed (``batch::0.99`` = availability only)."""
    from repro.obs.slo import SloObjective

    parts = spec.split(":")
    if not parts[0]:
        raise SystemExit(f"serve: SLO spec {spec!r} needs a tenant name")
    if len(parts) > 4:
        raise SystemExit(
            f"serve: SLO spec {spec!r} has too many fields "
            "(name:p99_ns[:availability[:max_shed_rate]])"
        )
    try:
        p99 = float(parts[1]) if len(parts) > 1 and parts[1] else None
        avail = float(parts[2]) if len(parts) > 2 and parts[2] else None
        shed = float(parts[3]) if len(parts) > 3 and parts[3] else None
        return SloObjective(
            parts[0], p99_ns=p99, availability=avail, max_shed_rate=shed
        )
    except ValueError as exc:
        raise SystemExit(f"serve: bad SLO spec {spec!r}: {exc}") from None


def cmd_serve(args) -> None:
    """Replay a tenant-mix scenario through the resident serving loop."""
    from repro.serve import ServeHarness, ServeScenario, two_tenant_scenario

    faults = (
        {
            "unit_failures": 1,
            "row_faults": 1,
            "crc_bursts": 1,
            "downtrains": 1,
        }
        if args.storm
        else None
    )
    common = dict(
        workload=args.workload,
        policy=args.policy,
        seed=args.seed,
        batch_accesses=args.batch_accesses,
        zipf_s=args.zipf_s,
        phase_shift_at=args.phase_shift_at,
        max_batches=args.max_batches,
        wave_size=args.wave_size,
        steps_per_wave=args.steps_per_wave,
        drain_after_batches=args.drain_after,
        faults=faults,
        admission=args.admission,
        objectives=(
            tuple(_parse_slo(spec) for spec in args.slo) if args.slo else ()
        ),
    )
    if args.tenant:
        tenants = tuple(_parse_tenant(spec) for spec in args.tenant)
        scenario = ServeScenario(name=args.name, tenants=tenants, **common)
    else:
        scenario = two_tenant_scenario(name=args.name, **common)
    recorder = (
        Recorder(
            workload=args.workload, policy=args.policy, preset=args.preset
        )
        if args.trace_out
        else None
    )
    harness = ServeHarness(
        scenario,
        preset=args.preset,
        recorder=recorder,
        journal_path=args.journal,
        backend=args.backend,
    )
    server = None
    if args.listen:
        import time as _time

        from repro.serve import LiveServeServer, parse_listen

        host, port = parse_listen(args.listen)
        server = LiveServeServer(
            harness.loop,
            make_batch=harness.make_batch,
            scenario=scenario.name,
            host=host,
            port=port,
            extra_labels={"preset": args.preset},
        ).start()
        print(f"[serve] live endpoint at {server.url} "
              "(/metrics /healthz /slo /report; POST /ingest)")
    try:
        report = harness.run(pace_s=args.pace, lock=server.lock if server else None)
        if server is not None:
            server.set_final(report)
            if args.linger > 0:
                print(f"[serve] lingering {args.linger:g}s at {server.url}")
                _time.sleep(args.linger)
    finally:
        if server is not None:
            server.close()
    print(report.summary())
    if args.report_out:
        from repro.obs.export import write_json

        write_json(args.report_out, report.to_json())
        print(f"[serve] wrote {args.report_out}")
    if recorder is not None and args.trace_out:
        lines = recorder.write_jsonl(args.trace_out)
        print(f"[serve] wrote {args.trace_out} ({lines} lines)")
    if args.prom:
        from repro.obs.export import serve_prometheus

        with open(args.prom, "w") as f:
            f.write(serve_prometheus(report, {"preset": args.preset}))
        print(f"[serve] wrote {args.prom}")


def cmd_stats(args) -> None:
    traces = [read_trace(path) for path in args.trace]
    if len(traces) == 1:
        trace = traces[0]
        print(
            render_table(
                ["metric", "value"],
                summary_rows(summarize(trace)),
                title=f"summary of {trace.path}",
            )
        )
        if trace.profile:
            print(
                render_table(
                    ["span", "calls", "total s"],
                    [
                        [row["label"], str(row["calls"]), f"{row['total_s']:.3f}"]
                        for row in trace.profile[:8]
                    ],
                    title="simulator self-profile",
                )
            )
    elif len(traces) == 2:
        a, b = traces
        print(
            render_table(
                ["metric", a.path, b.path, "delta"],
                diff_rows(summarize(a), summarize(b)),
                title="trace diff",
            )
        )
    else:
        raise SystemExit("stats takes one trace (summary) or two (diff)")
    if args.csv:
        traces[0].timeline.to_csv(args.csv)
        print(f"[stats] wrote {args.csv}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        cmd_stats(args)
        return 0
    if args.command == "dash":
        from repro.obs.dash import cmd_dash

        cmd_dash(args)
        return 0
    if args.command == "bench":
        from repro.exec.bench import cmd_bench

        cmd_bench(args)
        return 0
    if args.command == "profile":
        # Builds its own context *after* redirecting REPRO_CACHE_DIR,
        # so the profiled run cannot be served from the user's cache.
        cmd_profile(args)
        return 0
    if args.command == "serve":
        # The serving harness owns its engine/policy lifetime (the whole
        # point is one resident session), so no ExperimentContext.
        cmd_serve(args)
        return 0
    context = ExperimentContext(
        preset=args.preset,
        jobs=args.jobs,
        manifest_path=args.resume,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        backend=args.backend,
    )
    if args.command == "run":
        cmd_run(context, args)
    elif args.command == "compare":
        cmd_compare(context, args)
    elif args.command == "figure":
        FIGURES[args.name](context)
    elif args.command == "suite":
        fig5.run(context)
    elif args.command == "report":
        cmd_report(context, args)
    elif args.command == "trace":
        cmd_trace(context, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
